"""Benchmark: §III-B3 — path diversity from extension agreements.

The paper sketches (but does not evaluate) the extension of agreement
paths to further agreements.  This benchmark quantifies that next step on
the synthetic topology: how many additional length-4 paths ASes gain when
the segments created by the base MAs are offered onward to peers.
"""

from __future__ import annotations

from repro.agreements import enumerate_mutuality_agreements
from repro.experiments.reporting import format_table
from repro.paths import analyze_path_diversity
from repro.paths.extensions import analyze_extension_diversity
from repro.paths.diversity import sample_ases
from repro.topology import generate_topology


def test_extension_agreement_diversity(benchmark):
    topology = generate_topology(
        num_tier1=3, num_tier2=8, num_tier3=25, num_stubs=70, seed=41
    )
    graph = topology.graph
    base = list(enumerate_mutuality_agreements(graph))
    sample = sample_ases(graph, 40, seed=2)

    def run():
        base_diversity = analyze_path_diversity(
            graph, agreements=base, sample_size=40, seed=2
        )
        extension_summary = analyze_extension_diversity(graph, base, sample)
        return base_diversity, extension_summary

    base_diversity, extension_summary = benchmark.pedantic(run, rounds=1, iterations=1)

    base_gain = base_diversity.additional_path_summary()
    print()
    print(
        format_table(
            ["quantity", "value"],
            [
                ["base MAs", f"{len(base)}"],
                ["extension agreements", f"{extension_summary['num_extension_agreements']:.0f}"],
                ["mean additional length-3 paths (base MAs)", f"{base_gain['mean']:.0f}"],
                ["mean additional length-4 paths (extensions)", f"{extension_summary['mean']:.0f}"],
                ["max additional length-4 paths (extensions)", f"{extension_summary['max']:.0f}"],
            ],
        )
    )

    # Extensions open yet more paths on top of the base agreements.
    assert extension_summary["num_extension_agreements"] > len(base)
    assert extension_summary["mean"] > 0.0
