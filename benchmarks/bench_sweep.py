"""Benchmark: sweep orchestrator — cold grid vs. cached resume.

Runs the built-in smoke grid (the same 18 shards CI exercises) twice
against a fresh cache directory: the cold pass computes every shard, the
second pass must be served entirely from the content-addressed cache.
The emitted ``BENCH_sweep.json`` records both times — the resume
speedup is the number the sweep subsystem exists to deliver — and the
test asserts the cache actually short-circuits recomputation.
"""

from __future__ import annotations

import time

from _emit import emit

from repro.sweep import run_sweep, smoke_spec


def test_sweep_cold_vs_resume(tmp_path):
    spec = smoke_spec()
    cache_dir = tmp_path / "cache"
    out_dir = tmp_path / "out"

    started = time.perf_counter()
    cold = run_sweep(spec, cache_dir=cache_dir, out_dir=out_dir)
    cold_time = time.perf_counter() - started

    started = time.perf_counter()
    warm = run_sweep(spec, cache_dir=cache_dir, out_dir=out_dir)
    warm_time = time.perf_counter() - started

    num_shards = len(spec.expand())
    assert len(cold.executed) == num_shards and not cold.reused
    assert len(warm.reused) == num_shards and not warm.executed
    assert warm.summary_bytes() == cold.summary_bytes()

    speedup = cold_time / warm_time if warm_time > 0.0 else float("inf")
    emit(
        "sweep",
        wall_time_s=cold_time,
        operations=num_shards,
        scale={"spec": spec.name, "shards": num_shards},
        extra={
            "resume_wall_time_s": warm_time,
            "resume_speedup": speedup,
        },
    )
    print(
        f"\nsweep '{spec.name}' over {num_shards} shards: cold {cold_time:.2f}s, "
        f"resume {warm_time:.3f}s ({speedup:.0f}x)"
    )

    # The resume path must not redo shard work; even with generous slack
    # for filesystem jitter it has to beat the cold pass outright.
    assert warm_time < cold_time
