"""Benchmark: sub-batched mixed-cohort negotiation vs. per-agent scalar.

The workload is the heterogeneous-marketplace flush: a seeded
population (the built-in five-profile mix of
``marketplace-heterogeneous``) is resolved against a synthetic
topology, AS pairs are drawn from it, each pair negotiates under the
smaller of its parties' preferred choice-set cardinalities (the
lifecycle's ``W`` rule), and the whole cohort is decided twice — once
through :func:`repro.agents.decide_sequential` (one scalar
``BoscoService.negotiate`` per pair, the reference) and once through
:func:`repro.agents.decide_mixed_cohort` (order-preserving sub-batches,
one ``negotiate_many`` per published mechanism).

Scales (``REPRO_BENCH_SCALE`` env var, or ``--paper-scale``):

- ``tiny`` — CI smoke scale: proves the harness and the bit-exactness
  assertion, makes no speedup claim.
- ``default`` — a few hundred ASes, a few thousand negotiations.
- ``full`` — the paper-scale topology (8/60/400/1600 ≈ 2,000+ ASes)
  mixing all five profiles; here the benchmark *asserts* the ≥ 2×
  speedup the sub-batched path is contracted to deliver.

Results are emitted to ``BENCH_marketplace.json`` via ``_emit``.
"""

from __future__ import annotations

import os
import time

import numpy as np
from _emit import emit

from repro.agents import CohortEntry, decide_mixed_cohort, decide_sequential
from repro.agents.population import default_population_spec
from repro.bargaining.distributions import paper_distribution_u1
from repro.bargaining.mechanism import BoscoService
from repro.topology.generator import generate_topology

_SCALES = {
    "tiny": dict(topology=(2, 5, 12, 30), pairs=200, trials=2),
    "default": dict(topology=(4, 20, 80, 300), pairs=4_000, trials=5),
    "full": dict(topology=(8, 60, 400, 1600), pairs=40_000, trials=10),
}

#: The default BOSCO cardinality of the marketplace (profiles with a
#: ``num_choices`` preference negotiate under min(theirs, partner's)).
DEFAULT_WIDTH = 10

#: The contracted minimum speedup at full (paper) scale.
FULL_SCALE_MIN_SPEEDUP = 2.0


def _scale_name(paper_scale: bool) -> str:
    env = os.environ.get("REPRO_BENCH_SCALE")
    if env:
        if env not in _SCALES:
            raise ValueError(
                f"REPRO_BENCH_SCALE must be one of {sorted(_SCALES)}, got {env!r}"
            )
        return env
    return "full" if paper_scale else "default"


def _build_cohort(scale: str, seed: int):
    """Resolve the population and draw the mixed negotiation cohort."""
    tier1, tier2, tier3, stubs = _SCALES[scale]["topology"]
    graph = generate_topology(
        num_tier1=tier1, num_tier2=tier2, num_tier3=tier3, num_stubs=stubs, seed=seed
    ).graph
    population = default_population_spec(seed=seed).resolve(graph)
    ases = sorted(graph)
    rng = np.random.default_rng(seed)
    num_pairs = _SCALES[scale]["pairs"]
    left = rng.integers(0, len(ases), size=num_pairs)
    right = rng.integers(0, len(ases) - 1, size=num_pairs)
    utilities = rng.uniform(-1.0, 1.0, size=(num_pairs, 2))
    entries = []
    for i in range(num_pairs):
        x = ases[int(left[i])]
        y = ases[int(right[i]) + (int(right[i]) >= int(left[i]))]
        width = min(
            population.behavior_for(x).num_choices or DEFAULT_WIDTH,
            population.behavior_for(y).num_choices or DEFAULT_WIDTH,
        )
        entries.append(
            CohortEntry(
                key=width,
                utility_x=float(utilities[i, 0]),
                utility_y=float(utilities[i, 1]),
            )
        )
    return population, entries


def test_mixed_cohort_speedup(paper_scale):
    scale = _scale_name(paper_scale)
    seed = 2021
    population, entries = _build_cohort(scale, seed)

    census = population.census()
    if scale == "full":
        # The acceptance bar of the subsystem: a 2,000+-AS population
        # genuinely mixing the profiles, not a degenerate cohort.
        assert sum(census.values()) >= 2000
        assert len(census) >= 4

    service = BoscoService(paper_distribution_u1(), seed=seed)
    trials = _SCALES[scale]["trials"]
    mechanisms = {
        width: service.configure(width, trials=trials)
        for width in sorted({entry.key for entry in entries})
    }

    started = time.perf_counter()
    reference = decide_sequential(mechanisms, entries)
    reference_time = time.perf_counter() - started

    started = time.perf_counter()
    batched = decide_mixed_cohort(mechanisms, entries)
    batched_time = time.perf_counter() - started

    # Bit-identical at every scale — never approximately equal: the
    # heterogeneous marketplace trace hangs off this equality.
    assert batched == reference

    speedup = reference_time / batched_time if batched_time > 0.0 else float("inf")
    concluded = sum(1 for outcome in batched if outcome.concluded)
    emit(
        "marketplace",
        wall_time_s=batched_time,
        operations=len(entries),
        scale={
            "name": scale,
            "seed": seed,
            "topology": list(_SCALES[scale]["topology"]),
            "pairs": len(entries),
            "trials": trials,
            "widths": sorted(mechanisms),
        },
        extra={
            "reference_wall_time_s": reference_time,
            "speedup": speedup,
            "num_ases": sum(census.values()),
            "num_profiles": len(census),
            "concluded_fraction": concluded / len(entries),
        },
    )
    print(
        f"\n[{scale}] mixed-cohort flush, {len(entries)} negotiations over "
        f"W={sorted(mechanisms)} ({sum(census.values())} ASes, "
        f"{len(census)} profiles): reference {reference_time:.3f}s, "
        f"sub-batched {batched_time:.3f}s, speedup {speedup:.1f}x"
    )

    if scale == "full":
        assert speedup >= FULL_SCALE_MIN_SPEEDUP, (
            f"mixed-cohort sub-batching regressed: {speedup:.1f}x < "
            f"{FULL_SCALE_MIN_SPEEDUP:.0f}x at paper scale"
        )
