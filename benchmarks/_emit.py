"""Machine-readable benchmark results.

Every benchmark that wants its numbers consumed by tooling (CI trend
jobs, perf dashboards, the acceptance checks of performance PRs) calls
:func:`emit` with its headline measurements.  The helper writes one
``BENCH_<name>.json`` file per benchmark containing the wall time, the
derived ops/sec, and the scale knobs the numbers were measured at — so a
reader never has to guess which configuration produced a result.

The output directory defaults to the current working directory and can
be redirected with the ``REPRO_BENCH_DIR`` environment variable (CI
points it at a scratch dir and uploads the JSON as artifacts).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any


def bench_output_dir() -> Path:
    """Directory benchmark JSON files are written to."""
    return Path(os.environ.get("REPRO_BENCH_DIR", "."))


def emit(
    name: str,
    *,
    wall_time_s: float,
    operations: int | None = None,
    scale: dict[str, Any] | None = None,
    extra: dict[str, Any] | None = None,
) -> Path:
    """Write ``BENCH_<name>.json`` and return its path.

    ``operations`` is the number of logical operations the wall time
    covers (e.g. sources enumerated); ``ops_per_sec`` is derived from it
    when given.  ``scale`` records the size knobs of the run and
    ``extra`` any benchmark-specific measurements (speedups, per-phase
    times, …).
    """
    if wall_time_s < 0.0:
        raise ValueError(f"wall time cannot be negative, got {wall_time_s}")
    record: dict[str, Any] = {
        "name": name,
        "wall_time_s": wall_time_s,
    }
    if operations is not None:
        record["operations"] = operations
        # None rather than float("inf") for an immeasurably short run:
        # json.dumps would emit the bare token `Infinity`, which strict
        # JSON parsers reject.
        record["ops_per_sec"] = (
            operations / wall_time_s if wall_time_s > 0.0 else None
        )
    if scale:
        record["scale"] = scale
    if extra:
        record.update(extra)
    directory = bench_output_dir()
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{name}.json"
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return path


def emit_from_benchmark(
    bench_fixture: Any,
    name: str,
    *,
    operations: int | None = None,
    scale: dict[str, Any] | None = None,
    extra: dict[str, Any] | None = None,
) -> Path:
    """Emit the mean round time of a finished pytest-benchmark run.

    For multi-round micro-benchmarks (``benchmark(fn)``) the mean per
    round is the comparable number; single-shot experiment benches keep
    timing themselves with ``time.perf_counter`` instead.
    """
    stats = bench_fixture.stats.stats
    measurements = {"rounds": int(stats.rounds), "stddev_s": float(stats.stddev)}
    if extra:
        measurements.update(extra)
    return emit(
        name,
        wall_time_s=float(stats.mean),
        operations=operations,
        scale=scale,
        extra=measurements,
    )
