"""Benchmark: Fig. 2 — Price of Dishonesty vs. number of choices.

Regenerates the two series of Fig. 2 (minimum and mean PoD over random
choice-set trials for the utility distributions U(1) and U(2)) and
prints them next to the paper's headline reading (PoD flattening out
around 10 % at W ≈ 50).  Headline numbers are also emitted to
``BENCH_fig2_pod.json`` (see ``_emit``).
"""

from __future__ import annotations

import time
from dataclasses import asdict

from _emit import emit

from repro.experiments.fig2_pod import run_fig2
from repro.experiments.reporting import format_comparisons


def test_fig2_price_of_dishonesty(benchmark, run_once, fig2_config):
    started = time.perf_counter()
    result = run_once(run_fig2, fig2_config)
    emit(
        "fig2_pod",
        wall_time_s=time.perf_counter() - started,
        operations=len(fig2_config.choice_counts) * fig2_config.trials,
        scale=asdict(fig2_config),
        extra={
            "best_pod_u1": result.best_pod("U(1)"),
            "best_pod_u2": result.best_pod("U(2)"),
        },
    )

    print()
    print(format_comparisons("Fig. 2 — Price of Dishonesty", result.comparisons()))
    print(result.report())

    # Shape assertions: PoD lives in [0, 1], the best configurations at the
    # largest W are competitive with the paper's ~10%, and more choices help.
    for row in result.rows:
        assert 0.0 <= row.min_pod <= row.mean_pod <= 1.0
    for distribution in ("U(1)", "U(2)"):
        series = result.series(distribution, "min")
        assert series[-1][1] <= series[0][1] + 0.05
        assert result.best_pod(distribution) <= 0.30
