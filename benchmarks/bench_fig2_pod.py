"""Benchmark: Fig. 2 — Price of Dishonesty vs. number of choices.

Regenerates the two series of Fig. 2 (minimum and mean PoD over random
choice-set trials for the utility distributions U(1) and U(2)) and
prints them next to the paper's headline reading (PoD flattening out
around 10 % at W ≈ 50).
"""

from __future__ import annotations

from repro.experiments.fig2_pod import run_fig2
from repro.experiments.reporting import format_comparisons


def test_fig2_price_of_dishonesty(benchmark, run_once, fig2_config):
    result = run_once(run_fig2, fig2_config)

    print()
    print(format_comparisons("Fig. 2 — Price of Dishonesty", result.comparisons()))
    print(result.report())

    # Shape assertions: PoD lives in [0, 1], the best configurations at the
    # largest W are competitive with the paper's ~10%, and more choices help.
    for row in result.rows:
        assert 0.0 <= row.min_pod <= row.mean_pod <= 1.0
    for distribution in ("U(1)", "U(2)"):
        series = result.series(distribution, "min")
        assert series[-1][1] <= series[0][1] + 0.05
        assert result.best_pod(distribution) <= 0.30
