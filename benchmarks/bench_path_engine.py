"""Benchmark: batched PathEngine vs. per-source GRC path enumeration.

The workload is the §VI primitive every figure consumes: for *all*
sources of the synthetic topology, the number of GRC-conforming
length-3 paths and the number of destinations those paths reach.  The
baseline is the pre-refactor approach — one naive graph walk per source
(:func:`repro.paths.grc.iter_grc_length3_paths`) — and the contender is
a cold :class:`repro.core.PathEngine` (compile time included).

Scales (``REPRO_BENCH_SCALE`` env var, or ``--paper-scale``):

- ``tiny`` — CI smoke scale: proves the harness and the equivalence
  assertion work, makes no speedup claim.
- ``default`` — the reduced experiment scale.
- ``full`` — the ``repro experiments --full`` diversity scale
  (8/60/200/800 tiers, ~1.1k ASes); here the benchmark *asserts* the
  ≥ 5× speedup the compiled core is contracted to deliver.

Results are emitted to ``BENCH_path_engine.json`` via ``_emit``.
"""

from __future__ import annotations

import os
import time

from _emit import emit

from repro.core import PathEngine, compile_topology
from repro.paths.grc import iter_grc_length3_paths
from repro.topology.generator import generate_topology

_SCALES = {
    "tiny": dict(num_tier1=3, num_tier2=8, num_tier3=25, num_stubs=70),
    "default": dict(num_tier1=8, num_tier2=40, num_tier3=120, num_stubs=400),
    "full": dict(num_tier1=8, num_tier2=60, num_tier3=200, num_stubs=800),
}

#: The contracted minimum speedup at full (paper) scale.
FULL_SCALE_MIN_SPEEDUP = 5.0


def _scale_name(paper_scale: bool) -> str:
    env = os.environ.get("REPRO_BENCH_SCALE")
    if env:
        if env not in _SCALES:
            raise ValueError(
                f"REPRO_BENCH_SCALE must be one of {sorted(_SCALES)}, got {env!r}"
            )
        return env
    return "full" if paper_scale else "default"


def _naive_all_sources(graph) -> dict[int, tuple[int, int]]:
    """(path count, destination count) per source, one graph walk each."""
    results: dict[int, tuple[int, int]] = {}
    for source in graph:
        count = 0
        destinations: set[int] = set()
        for path in iter_grc_length3_paths(graph, source):
            count += 1
            destinations.add(path[2])
        results[source] = (count, len(destinations))
    return results


def _engine_all_sources(graph) -> dict[int, tuple[int, int]]:
    """The same quantities from a cold compiled engine (compile included)."""
    engine = PathEngine(compile_topology(graph))
    counts = engine.counts_by_source()
    destination_counts = engine.destination_counts_by_source()
    return {asn: (counts[asn], destination_counts[asn]) for asn in counts}


def test_path_engine_speedup(paper_scale):
    scale = _scale_name(paper_scale)
    seed = 2021
    graph = generate_topology(seed=seed, **_SCALES[scale]).graph

    started = time.perf_counter()
    naive = _naive_all_sources(graph)
    naive_time = time.perf_counter() - started

    started = time.perf_counter()
    batched = _engine_all_sources(graph)
    engine_time = time.perf_counter() - started

    # The engine must agree with the reference exactly, at every scale.
    assert batched == naive

    speedup = naive_time / engine_time if engine_time > 0.0 else float("inf")
    total_paths = sum(count for count, _ in naive.values())
    emit(
        "path_engine",
        wall_time_s=engine_time,
        operations=len(naive),
        scale={"name": scale, "seed": seed, "ases": len(graph), **_SCALES[scale]},
        extra={
            "naive_wall_time_s": naive_time,
            "speedup": speedup,
            "total_grc_length3_paths": total_paths,
        },
    )
    print(
        f"\n[{scale}] all-sources GRC length-3 sweep over {len(graph)} ASes "
        f"({total_paths} paths): naive {naive_time:.3f}s, "
        f"engine {engine_time:.3f}s, speedup {speedup:.1f}x"
    )

    if scale == "full":
        assert speedup >= FULL_SCALE_MIN_SPEEDUP, (
            f"compiled path engine regressed: {speedup:.1f}x < "
            f"{FULL_SCALE_MIN_SPEEDUP:.0f}x at full scale"
        )
