"""Benchmark: batched PathEngine vs. per-source GRC path enumeration.

The workload is the §VI primitive every figure consumes: for *all*
sources of the synthetic topology, the number of GRC-conforming
length-3 paths and the number of destinations those paths reach.  The
baseline is the pre-refactor approach — one naive graph walk per source
(:func:`repro.paths.grc.iter_grc_length3_paths`) — and the contender is
a cold :class:`repro.core.PathEngine` (compile time included).

Scales (``REPRO_BENCH_SCALE`` env var, or ``--paper-scale``):

- ``tiny`` — CI smoke scale: proves the harness and the equivalence
  assertion work, makes no speedup claim.
- ``default`` — the reduced experiment scale.
- ``full`` — the ``repro experiments --full`` diversity scale
  (8/60/200/800 tiers, ~1.1k ASes); here the benchmark *asserts* the
  ≥ 5× speedup the compiled core is contracted to deliver.

Both tests also time the three ingestion paths against each other —
cold graph compile (parse + ``compile_topology``), streaming compile
(lines → arrays, :mod:`repro.core.streaming`), and mmap artifact open
(:mod:`repro.core.artifacts`) — the numbers behind the worker
warm-start contract.

Results are emitted to ``BENCH_path_engine.json`` via ``_emit``;
:func:`test_path_engine_scale10k` always runs a synthetic ~10k-AS /
~50k-link internet-scale smoke (independent of ``REPRO_BENCH_SCALE``)
and emits ``BENCH_path_engine_scale10k.json``, asserting the ≥ 5×
mmap-vs-cold warm-start speedup and the blocked sweep's sub-n×n peak
memory.
"""

from __future__ import annotations

import os
import tempfile
import time
import tracemalloc

import numpy as np
from _emit import emit

from repro.core import (
    PathEngine,
    compile_as_rel_lines,
    compile_topology,
    load_artifact,
)
from repro.core.artifacts import ArtifactStore
from repro.paths.grc import iter_grc_length3_paths
from repro.topology.caida import dump_as_rel_lines, parse_as_rel_lines
from repro.topology.generator import generate_topology

_SCALES = {
    "tiny": dict(num_tier1=3, num_tier2=8, num_tier3=25, num_stubs=70),
    "default": dict(num_tier1=8, num_tier2=40, num_tier3=120, num_stubs=400),
    "full": dict(num_tier1=8, num_tier2=60, num_tier3=200, num_stubs=800),
}

#: The contracted minimum speedup at full (paper) scale.
FULL_SCALE_MIN_SPEEDUP = 5.0

#: The contracted minimum warm-start speedup: opening the memory-mapped
#: artifact must beat re-ingesting the as-rel file (parse + compile) by
#: at least this factor — that is what makes passing artifact paths to
#: ``--jobs`` workers worth it.
WARM_START_MIN_SPEEDUP = 5.0


def _ingestion_times(lines: list[str]) -> dict[str, float]:
    """Wall times of the three ingestion paths for the same content.

    ``cold_compile_s`` is parse + graph compile (what a worker without
    the artifact store pays), ``streaming_compile_s`` the direct
    lines→arrays path, ``mmap_open_s`` the artifact open; the streamed
    and graph-compiled views are asserted element-identical.
    """
    started = time.perf_counter()
    graph = parse_as_rel_lines(lines)  # kept alive: the view's fingerprint
    graph_view = compile_topology(graph)  # derives lazily from its source
    cold_compile_s = time.perf_counter() - started

    started = time.perf_counter()
    streamed = compile_as_rel_lines(lines)
    streaming_compile_s = time.perf_counter() - started

    assert streamed.same_arrays(graph_view)
    assert streamed.source_fingerprint == graph_view.source_fingerprint

    with tempfile.TemporaryDirectory() as tmp:
        artifact = ArtifactStore(tmp).ensure_compiled(streamed)
        started = time.perf_counter()
        view = load_artifact(artifact)
        mmap_open_s = time.perf_counter() - started
        assert view.same_arrays(streamed)
    return {
        "cold_compile_s": cold_compile_s,
        "streaming_compile_s": streaming_compile_s,
        "mmap_open_s": mmap_open_s,
    }


def _scale_name(paper_scale: bool) -> str:
    env = os.environ.get("REPRO_BENCH_SCALE")
    if env:
        if env not in _SCALES:
            raise ValueError(
                f"REPRO_BENCH_SCALE must be one of {sorted(_SCALES)}, got {env!r}"
            )
        return env
    return "full" if paper_scale else "default"


def _naive_all_sources(graph) -> dict[int, tuple[int, int]]:
    """(path count, destination count) per source, one graph walk each."""
    results: dict[int, tuple[int, int]] = {}
    for source in graph:
        count = 0
        destinations: set[int] = set()
        for path in iter_grc_length3_paths(graph, source):
            count += 1
            destinations.add(path[2])
        results[source] = (count, len(destinations))
    return results


def _engine_all_sources(graph) -> dict[int, tuple[int, int]]:
    """The same quantities from a cold compiled engine (compile included)."""
    engine = PathEngine(compile_topology(graph))
    counts = engine.counts_by_source()
    destination_counts = engine.destination_counts_by_source()
    return {asn: (counts[asn], destination_counts[asn]) for asn in counts}


def test_path_engine_speedup(paper_scale):
    scale = _scale_name(paper_scale)
    seed = 2021
    graph = generate_topology(seed=seed, **_SCALES[scale]).graph

    started = time.perf_counter()
    naive = _naive_all_sources(graph)
    naive_time = time.perf_counter() - started

    started = time.perf_counter()
    batched = _engine_all_sources(graph)
    engine_time = time.perf_counter() - started

    # The engine must agree with the reference exactly, at every scale.
    assert batched == naive

    speedup = naive_time / engine_time if engine_time > 0.0 else float("inf")
    total_paths = sum(count for count, _ in naive.values())
    ingestion = _ingestion_times(dump_as_rel_lines(graph))
    emit(
        "path_engine",
        wall_time_s=engine_time,
        operations=len(naive),
        scale={"name": scale, "seed": seed, "ases": len(graph), **_SCALES[scale]},
        extra={
            "naive_wall_time_s": naive_time,
            "speedup": speedup,
            "total_grc_length3_paths": total_paths,
            **ingestion,
        },
    )
    print(
        f"\n[{scale}] all-sources GRC length-3 sweep over {len(graph)} ASes "
        f"({total_paths} paths): naive {naive_time:.3f}s, "
        f"engine {engine_time:.3f}s, speedup {speedup:.1f}x"
    )

    if scale == "full":
        assert speedup >= FULL_SCALE_MIN_SPEEDUP, (
            f"compiled path engine regressed: {speedup:.1f}x < "
            f"{FULL_SCALE_MIN_SPEEDUP:.0f}x at full scale"
        )


def _synthetic_as_rel_lines(
    n: int = 10_000, peerings: int = 40_000, seed: int = 2021
) -> list[str]:
    """Seeded ~``n``-AS / ~``n + peerings``-link as-rel snapshot.

    Shaped like a CAIDA serial-2 file, not like the tiered experiment
    generator (whose peering density explodes at this size): every AS
    beyond the first two buys transit from one random earlier AS, and
    ``peerings`` distinct random pairs peer.  Pure vectorized numpy, so
    synthesizing the input costs a fraction of ingesting it.
    """
    rng = np.random.default_rng(seed)
    customers = np.arange(3, n + 1, dtype=np.int64)
    providers = rng.integers(1, customers)
    transit_keys = set(
        (np.minimum(providers, customers) * (n + 1) + np.maximum(providers, customers))
        .tolist()
    )
    pairs = rng.integers(1, n + 1, size=(3 * peerings, 2))
    lo = np.minimum(pairs[:, 0], pairs[:, 1])
    hi = np.maximum(pairs[:, 0], pairs[:, 1])
    distinct = lo != hi
    lo, hi = lo[distinct], hi[distinct]
    keys = lo * (n + 1) + hi
    _, first_seen = np.unique(keys, return_index=True)
    first_seen.sort()
    lo, hi, keys = lo[first_seen], hi[first_seen], keys[first_seen]
    fresh = np.fromiter(
        (int(key) not in transit_keys for key in keys), bool, len(keys)
    )
    lo, hi = lo[fresh][:peerings], hi[fresh][:peerings]
    lines = [f"{p}|{c}|-1" for p, c in zip(providers, customers)]
    lines.extend(f"{a}|{b}|0" for a, b in zip(lo, hi))
    return lines


def test_path_engine_scale10k():
    """Internet-scale smoke: always-on, independent of REPRO_BENCH_SCALE.

    Asserts the two contracts the artifact + blocked-sweep substrate is
    built on: opening the memory-mapped artifact beats re-ingesting the
    file by ≥ 5× (the worker warm-start claim), and the all-sources
    blocked sweep never allocates anything close to a dense n×n matrix.
    """
    lines = _synthetic_as_rel_lines()
    ingestion = _ingestion_times(lines)

    streamed = compile_as_rel_lines(lines)
    n = streamed.n
    with tempfile.TemporaryDirectory() as tmp:
        artifact = ArtifactStore(tmp).ensure_compiled(streamed)
        view = load_artifact(artifact)
        engine = PathEngine(view)
        tracemalloc.start()
        started = time.perf_counter()
        path_counts = engine.counts_range(0, n)
        destination_counts = engine.destination_counts_range(0, n)
        sweep_time = time.perf_counter() - started
        _, peak_bytes = tracemalloc.get_traced_memory()
        tracemalloc.stop()

    total_paths = int(path_counts.sum())
    assert destination_counts.shape == (n,)
    warm_start = (
        ingestion["cold_compile_s"] / ingestion["mmap_open_s"]
        if ingestion["mmap_open_s"] > 0.0
        else float("inf")
    )
    emit(
        "path_engine_scale10k",
        wall_time_s=sweep_time,
        operations=n,
        scale={"name": "scale10k", "seed": 2021, "ases": n, "links": streamed.num_links},
        extra={
            **ingestion,
            "warm_start_speedup": warm_start,
            "sweep_peak_bytes": int(peak_bytes),
            "total_grc_length3_paths": total_paths,
        },
    )
    print(
        f"\n[scale10k] {n} ASes, {streamed.num_links} links: "
        f"cold {ingestion['cold_compile_s']:.3f}s, "
        f"stream {ingestion['streaming_compile_s']:.3f}s, "
        f"mmap {ingestion['mmap_open_s'] * 1000.0:.1f}ms "
        f"({warm_start:.0f}x warm start); blocked sweep {sweep_time:.3f}s, "
        f"peak {peak_bytes / 1e6:.1f}MB (dense n*n would be {n * n / 1e6:.0f}MB)"
    )

    assert warm_start >= WARM_START_MIN_SPEEDUP, (
        f"mmap warm start regressed: {warm_start:.1f}x < "
        f"{WARM_START_MIN_SPEEDUP:.0f}x vs cold re-ingestion"
    )
    # The blocked sweep's bound: peak traced allocation stays below what
    # one dense n×n bool matrix alone would cost.
    assert peak_bytes < n * n, (
        f"blocked sweep peak {peak_bytes} bytes is no better than a "
        f"dense n*n matrix ({n * n} bytes)"
    )
