"""Benchmark: Fig. 5 — geodistance of the additional MA paths.

Regenerates the three condition series of Fig. 5a (MA paths beating the
maximum / median / minimum GRC geodistance per AS pair) and the relative
geodistance-reduction CDF of Fig. 5b.  Headline numbers are also
emitted to ``BENCH_fig5_geodistance.json`` (see ``_emit``).
"""

from __future__ import annotations

import time
from dataclasses import asdict

from _emit import emit

from repro.experiments.fig5_geodistance import run_fig5
from repro.experiments.reporting import format_comparisons


def test_fig5_geodistance(benchmark, run_once, fig5_config):
    started = time.perf_counter()
    result = run_once(run_fig5, fig5_config)
    emit(
        "fig5_geodistance",
        wall_time_s=time.perf_counter() - started,
        operations=fig5_config.pair_sample_size,
        scale=asdict(fig5_config),
        extra={"num_agreements": result.num_agreements},
    )

    print()
    print(format_comparisons("Fig. 5 — geodistance of MA paths", result.comparisons()))
    print(result.report())

    analysis = result.geodistance
    below_min = analysis.fraction_of_pairs_improving("min", 1)
    below_median = analysis.fraction_of_pairs_improving("median", 1)
    below_max = analysis.fraction_of_pairs_improving("max", 1)

    # Condition ordering (a path below the GRC minimum also beats median/max)
    # and a substantial share of pairs benefiting — the Fig. 5a shape.
    assert below_min <= below_median <= below_max
    assert below_min >= 0.25

    # Fig. 5b: the reductions are real (strictly positive) and sizeable for
    # the median benefiting pair.
    reduction = analysis.reduction_cdf()
    assert reduction.count > 0
    assert reduction.minimum > 0.0
    assert reduction.median >= 0.10
