"""Benchmark: the discrete-event simulation engine.

Two angles: raw kernel throughput (events/sec through the queue and
clock with a no-op action) and the end-to-end failure-churn scenario
(whose events carry BGP reconvergence and beaconing work).  The printed
events/sec figure is the headline number for the engine.
"""

from __future__ import annotations

from repro.simulation import FailureChurnScenario, SimulationEngine


def test_event_kernel_throughput(benchmark):
    """Raw engine throughput: schedule-and-run 50k no-op events."""
    num_events = 50_000

    def pump() -> int:
        engine = SimulationEngine(seed=0)
        for index in range(num_events):
            engine.schedule_at(float(index % 97), lambda: None)
        engine.run(until=100.0)
        return engine.events_processed

    processed = benchmark(pump)
    assert processed == num_events

    rate = processed / benchmark.stats["mean"]
    print()
    print("== simulation kernel throughput ==")
    print(f"events processed: {processed}")
    print(f"events/sec (no-op actions): {rate:,.0f}")


def test_failure_churn_scenario(benchmark, run_once):
    """End-to-end failure-churn scenario: real routing work per event."""
    scenario = FailureChurnScenario(duration=48.0)
    result = run_once(scenario.run)

    rate = result.events_processed / benchmark.stats["mean"]
    print()
    print("== failure-churn scenario ==")
    print(f"events processed: {result.events_processed}")
    print(f"trace records: {len(result.trace)}")
    print(f"events/sec (incl. BGP + beaconing work): {rate:,.0f}")
    print(f"BGP availability: {result.trace.availability('BGP'):.4f}")
    print(f"PAN availability: {result.trace.availability('PAN'):.4f}")

    assert result.trace.availability("PAN") >= result.trace.availability("BGP")
