"""Benchmark: §IV — agreement qualification methods on randomized scenarios.

Compares flow-volume targets and cash compensation across a population
of randomized traffic scenarios (the §IV-C discussion): how often each
method concludes the agreement, the joint utility it achieves, and the
fairness of the split.  Also times the two optimizers individually on
the paper's Fig. 1 worked example.
"""

from __future__ import annotations

import numpy as np

from repro.agreements import AgreementScenario, SegmentTraffic, enumerate_mutuality_agreements
from repro.economics import ENDHOSTS, FlowVector, default_business_models
from repro.experiments.reporting import format_table
from repro.optimization import (
    compare_methods,
    negotiate_cash_agreement,
    optimize_flow_volume_targets,
)
from repro.topology import generate_topology


def _random_scenario(agreement, graph, rng) -> AgreementScenario:
    segments = []
    rerouted_totals = {party: {} for party in agreement.parties}
    for segment in agreement.all_segments():
        rerouted = float(rng.uniform(0.0, 8.0))
        attracted = float(rng.uniform(0.0, 4.0))
        providers = sorted(graph.providers(segment.beneficiary))
        previous = providers[0] if providers else None
        if previous is not None:
            totals = rerouted_totals[segment.beneficiary]
            totals[previous] = totals.get(previous, 0.0) + rerouted
        segments.append(
            SegmentTraffic(
                segment=segment,
                rerouted={previous: rerouted},
                attracted={ENDHOSTS: attracted},
                attracted_limits={ENDHOSTS: attracted * 1.5},
            )
        )
    baseline = {}
    for party in agreement.parties:
        flows = {ENDHOSTS: 25.0}
        for provider, total in rerouted_totals[party].items():
            flows[provider] = total + 15.0
        baseline[party] = FlowVector(flows)
    return AgreementScenario(agreement=agreement, segments=segments, baseline=baseline)


def test_method_comparison_population(benchmark):
    """§IV-C: cash concludes at least as often as flow-volume targets."""
    topology = generate_topology(
        num_tier1=4, num_tier2=10, num_tier3=25, num_stubs=60, seed=31
    )
    graph = topology.graph
    businesses = default_business_models(graph)
    agreements = [
        a for a in enumerate_mutuality_agreements(graph) if len(a.all_segments()) <= 12
    ][:30]
    rng = np.random.default_rng(5)
    scenarios = [_random_scenario(agreement, graph, rng) for agreement in agreements]

    def run_population():
        return [
            compare_methods(scenario, businesses, restarts=2, seed=3)
            for scenario in scenarios
        ]

    comparisons = benchmark.pedantic(run_population, rounds=1, iterations=1)

    cash_concluded = sum(1 for c in comparisons if c.cash_concluded)
    flow_concluded = sum(1 for c in comparisons if c.flow_volume_concluded)
    cash_only = sum(1 for c in comparisons if c.flexibility_advantage_cash)
    mean_cash_gap = float(np.mean([c.cash_fairness_gap for c in comparisons]))
    mean_flow_gap = float(
        np.mean(
            [c.flow_volume_fairness_gap for c in comparisons if c.flow_volume_concluded]
            or [0.0]
        )
    )

    print()
    print(
        format_table(
            ["metric", "cash compensation", "flow-volume targets"],
            [
                ["agreements concluded", str(cash_concluded), str(flow_concluded)],
                ["concluded by this method only", str(cash_only), "0"],
                ["mean fairness gap", f"{mean_cash_gap:.3f}", f"{mean_flow_gap:.3f}"],
            ],
        )
    )

    # §IV-C claims: cash is at least as flexible, and the Nash split is fair.
    assert cash_concluded >= flow_concluded
    assert mean_cash_gap < 1e-9


def _figure1_scenario() -> AgreementScenario:
    """The §III-B2 worked example with the quickstart traffic numbers."""
    from repro.agreements import figure1_mutuality_agreement
    from repro.agreements.agreement import PathSegment
    from repro.topology import AS_A, AS_B, AS_D, AS_E, AS_F, AS_H, AS_I

    agreement = figure1_mutuality_agreement()
    return AgreementScenario(
        agreement=agreement,
        segments=[
            SegmentTraffic(
                segment=PathSegment(beneficiary=AS_D, partner=AS_E, target=AS_B),
                rerouted={AS_A: 10.0},
                attracted={ENDHOSTS: 5.0, AS_H: 3.0},
                attracted_limits={ENDHOSTS: 8.0, AS_H: 5.0},
            ),
            SegmentTraffic(
                segment=PathSegment(beneficiary=AS_D, partner=AS_E, target=AS_F),
                rerouted={AS_A: 4.0},
                attracted={AS_H: 2.0},
            ),
            SegmentTraffic(
                segment=PathSegment(beneficiary=AS_E, partner=AS_D, target=AS_A),
                rerouted={AS_B: 8.0},
                attracted={ENDHOSTS: 4.0, AS_I: 2.0},
            ),
        ],
        baseline={
            AS_D: FlowVector({AS_A: 30.0, AS_H: 20.0, ENDHOSTS: 10.0, AS_E: 5.0}),
            AS_E: FlowVector({AS_B: 25.0, AS_I: 15.0, ENDHOSTS: 10.0, AS_D: 5.0}),
        },
    )


def test_cash_negotiation_speed(benchmark):
    """Micro-benchmark of the closed-form cash optimization (Eq. 11)."""
    from repro.topology import figure1_topology

    scenario = _figure1_scenario()
    businesses = default_business_models(figure1_topology())

    result = benchmark(negotiate_cash_agreement, scenario, businesses)
    print()
    print(
        f"Fig. 1 cash negotiation: concluded = {result.concluded}, "
        f"transfer = {result.transfer_x_to_y:+.2f}"
    )
    assert result.concluded
    assert abs(result.post_utility_x - result.post_utility_y) < 1e-9


def test_flow_volume_optimization_speed(benchmark):
    """Micro-benchmark of the flow-volume nonlinear program (Eq. 9)."""
    from repro.topology import figure1_topology

    scenario = _figure1_scenario()
    businesses = default_business_models(figure1_topology())

    result = benchmark.pedantic(
        optimize_flow_volume_targets,
        args=(scenario, businesses),
        kwargs={"restarts": 3, "seed": 1},
        rounds=1,
        iterations=1,
    )
    print()
    print(
        f"Fig. 1 flow-volume optimization: concluded = {result.concluded}, "
        f"Nash product = {result.nash_product:.2f}"
    )
    assert result.concluded
    assert result.utility_x >= -1e-6
    assert result.utility_y >= -1e-6
