"""Ablation: BOSCO choice-set construction — random sampling vs. quantiles.

§V-E reports that *random* choice-set generation works reasonably well.
This ablation compares it against the deterministic quantile-spaced
construction and against varying the number of configuration trials,
which is the knob the BOSCO service actually controls.
"""

from __future__ import annotations

from repro.bargaining import BoscoService, optimal_posted_price, paper_distribution_u1
from repro.experiments.reporting import format_table


def test_choice_construction_ablation(benchmark):
    def run() -> dict[str, float]:
        random_service = BoscoService(
            paper_distribution_u1(), seed=3, choice_construction="random"
        )
        quantile_service = BoscoService(
            paper_distribution_u1(), seed=3, choice_construction="quantile"
        )
        random_best = random_service.configure(30, trials=15).price_of_dishonesty
        random_single = random_service.configure(30, trials=1).price_of_dishonesty
        quantile_best = quantile_service.configure(30, trials=1).price_of_dishonesty
        return {
            "random (15 trials)": random_best,
            "random (1 trial)": random_single,
            "quantile (deterministic)": quantile_best,
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(
        format_table(
            ["construction", "PoD"],
            [[name, f"{value:.3f}"] for name, value in results.items()],
        )
    )

    # All constructions produce valid mechanisms ...
    for value in results.values():
        assert 0.0 <= value <= 1.0
    # ... and searching over several random choice sets is at least as good
    # as committing to the first random draw (the §V-E procedure).
    assert results["random (15 trials)"] <= results["random (1 trial)"] + 1e-9


def test_bosco_vs_incentive_compatible_baseline(benchmark):
    """§V-B: BOSCO's tolerated dishonesty beats a DSIC posted-price arbiter.

    The posted-price mechanism is dominant-strategy incentive compatible,
    budget-balanced, and individually rational — but it cancels every
    viable agreement whose surplus straddles the posted price.  BOSCO's
    equilibrium loses less expected Nash product.
    """
    distribution = paper_distribution_u1()

    def run() -> dict[str, float]:
        baseline = optimal_posted_price(distribution)
        service = BoscoService(distribution, seed=29)
        bosco = service.configure(40, trials=15)
        return {
            "posted price (DSIC baseline)": baseline.efficiency_loss(distribution),
            "BOSCO (best of 15 choice sets)": bosco.price_of_dishonesty,
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(
        format_table(
            ["mechanism", "efficiency loss vs. truthful optimum"],
            [[name, f"{value:.3f}"] for name, value in results.items()],
        )
    )

    assert results["BOSCO (best of 15 choice sets)"] < results[
        "posted price (DSIC baseline)"
    ]


def test_number_of_choices_ablation(benchmark):
    """The Fig. 2 trend, measured as an ablation of the W knob."""
    service = BoscoService(paper_distribution_u1(), seed=11)

    def run():
        return {
            w: service.pod_statistics(w, trials=12)["min"] for w in (5, 15, 30, 50)
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(
        format_table(
            ["W (choices per party)", "min PoD"],
            [[str(w), f"{pod:.3f}"] for w, pod in results.items()],
        )
    )

    assert results[50] <= results[5] + 0.05
