"""Benchmark: Fig. 6 — bandwidth of the additional MA paths.

Regenerates the three condition series of Fig. 6a (MA paths beating the
maximum / median / minimum GRC path bandwidth per AS pair, under the
degree-gravity capacity model) and the relative bandwidth-increase CDF
of Fig. 6b.  Headline numbers are also emitted to
``BENCH_fig6_bandwidth.json`` (see ``_emit``).
"""

from __future__ import annotations

import time
from dataclasses import asdict

from _emit import emit

from repro.experiments.fig6_bandwidth import run_fig6
from repro.experiments.reporting import format_comparisons


def test_fig6_bandwidth(benchmark, run_once, fig6_config):
    started = time.perf_counter()
    result = run_once(run_fig6, fig6_config)
    emit(
        "fig6_bandwidth",
        wall_time_s=time.perf_counter() - started,
        operations=fig6_config.pair_sample_size,
        scale=asdict(fig6_config),
        extra={"num_agreements": result.num_agreements},
    )

    print()
    print(format_comparisons("Fig. 6 — bandwidth of MA paths", result.comparisons()))
    print(result.report())

    analysis = result.bandwidth
    above_max = analysis.fraction_of_pairs_improving("max", 1)
    above_median = analysis.fraction_of_pairs_improving("median", 1)
    above_min = analysis.fraction_of_pairs_improving("min", 1)

    # Condition ordering and a substantial share of pairs gaining a path
    # with more bandwidth than the best GRC path — the Fig. 6a shape.
    assert above_max <= above_median <= above_min
    assert above_max >= 0.15

    # Fig. 6b: benefiting pairs gain real bandwidth.
    increase = analysis.increase_cdf()
    assert increase.count > 0
    assert increase.minimum > 0.0
    assert increase.median >= 0.10
