"""Benchmark: ``repro serve`` throughput under concurrent clients.

The serve subsystem's performance claims are measured against a real
child-process server on an ephemeral port, driven by N concurrent
keep-alive clients posting negotiation envelopes:

- **coalesced vs. uncoalesced** — the same workload against a server
  with the coalescing window open vs. ``--coalesce-window-ms 0``
  (caching disabled on both, so only cross-client batching differs).
  At full (paper) scale — W=50, 8 clients × 25 trials per wave = the
  paper's 200 trials packed into one engine batch — the bench *asserts*
  the ≥ 2× throughput contract.
- **multi-worker vs. single-worker** — the identical uncoalesced
  workload against ``--workers 4``: four forked processes accepting on
  one shared socket, sidestepping the single process's GIL.  Responses
  must be byte-identical to the single-worker run at every scale; at
  full scale the bench *asserts* the ≥ 2× throughput contract.
- **cold vs. warm cache** — the same request set twice against a
  caching server: the repeat pass must be served from the
  fingerprint-keyed byte cache.
- **cross-worker shared cache** — a body computed by one worker of a
  ``--workers 2`` server is replayed by fresh concurrent clients; the
  merged ``/stats`` must show a ``disk_hits`` count ≥ 1 (a sibling
  worker served bytes it never computed, off the shared disk store).

Scales (``REPRO_BENCH_SCALE`` env var, or ``--paper-scale``): ``tiny``
(CI smoke), ``default``, ``full``.  The headline ``wall_time_s`` is the
coalesced run; every other measurement lands in ``extra`` of
``BENCH_serve.json``.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from _emit import emit

from repro.serve.client import ServeClient

_SCALES = {
    # Small enough for CI, large enough that a request is real work.
    "tiny": dict(clients=4, waves=2, num_choices=10, trials=5),
    "default": dict(clients=8, waves=3, num_choices=30, trials=10),
    # Paper scale: one coalesced wave is W=50 with 8×25 = 200 trials,
    # the Fig. 2 full-scale trial count, in a single engine batch.
    "full": dict(clients=8, waves=4, num_choices=50, trials=25),
}

#: The contracted coalescing speedup, asserted at full scale only —
#: at smoke scales the fixed per-request overhead dominates the solve.
MIN_COALESCE_SPEEDUP = 2.0

#: The contracted ``--workers 4`` speedup over a single worker,
#: asserted at full scale on machines with >= 4 usable cores (process
#: parallelism cannot express itself on fewer — a 1-core container
#: time-slices the workers and the honest measurement is ~1.0x).  At
#: smoke scales a request is too cheap for parallelism to beat the
#: accept/dispatch overhead, so only byte-identity is asserted there.
MIN_WORKER_SPEEDUP = 2.0

#: On 2-3 cores some parallel speedup must still appear.
MIN_WORKER_SPEEDUP_FEW_CORES = 1.2

WORKERS = 4

_SRC_DIR = str(Path(__file__).resolve().parent.parent / "src")


def _scale_name(paper_scale: bool) -> str:
    env = os.environ.get("REPRO_BENCH_SCALE")
    if env:
        if env not in _SCALES:
            raise ValueError(
                f"REPRO_BENCH_SCALE must be one of {sorted(_SCALES)}, got {env!r}"
            )
        return env
    return "full" if paper_scale else "default"


class _Server:
    """One ``repro serve`` child bound to an ephemeral port."""

    def __init__(self, *args: str) -> None:
        env = dict(os.environ)
        env["PYTHONPATH"] = _SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", "--port", "0", *args],
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            env=env,
            text=True,
        )
        line = self.proc.stdout.readline()
        self.port = int(re.search(r":(\d+)", line).group(1))

    def __enter__(self) -> "_Server":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        # SIGTERM, not SIGKILL: a multi-worker supervisor fans the
        # drain out to its forked workers (a SIGKILLed supervisor
        # cannot, and the workers would have to notice on their own).
        self.proc.terminate()
        try:
            self.proc.wait(timeout=30)
        except subprocess.TimeoutExpired:  # pragma: no cover - hung drain
            self.proc.kill()
            self.proc.wait(timeout=30)


def _drive(
    port: int, scale: dict, *, seed_base: int
) -> tuple[float, dict[int, bytes]]:
    """Run the concurrent workload once; wall time plus body per seed."""
    bodies: dict[int, bytes] = {}

    def client_run(client_id: int) -> None:
        with ServeClient("127.0.0.1", port) as client:
            for wave in range(scale["waves"]):
                seed = seed_base + client_id * scale["waves"] + wave
                response = client.raw_post(
                    "/v1/negotiate",
                    {
                        "num_choices": scale["num_choices"],
                        "trials": scale["trials"],
                        "seed": seed,
                    },
                )
                assert response.status == 200, response.body
                bodies[seed] = response.body

    started = time.perf_counter()
    with ThreadPoolExecutor(max_workers=scale["clients"]) as pool:
        list(pool.map(client_run, range(scale["clients"])))
    return time.perf_counter() - started, bodies


def _warm_up(port: int, scale: dict, *, workers: int = 1) -> None:
    """Pay first-request costs on every worker (concurrent fresh
    connections spread across the shared accept queue)."""

    def one(i: int) -> None:
        with ServeClient("127.0.0.1", port) as client:
            client.raw_post(
                "/v1/negotiate",
                {
                    "num_choices": scale["num_choices"],
                    "trials": scale["trials"],
                    "seed": 1 + i,
                },
            )

    count = max(scale["clients"], 2 * workers)
    with ThreadPoolExecutor(max_workers=count) as pool:
        list(pool.map(one, range(count)))


def _shared_cache_probe(scale: dict) -> tuple[float, int]:
    """Warm one body through one worker of a ``--workers 2`` server,
    replay it from fresh concurrent clients, and report the replay wall
    time plus the merged ``disk_hits`` count."""
    payload = {
        "num_choices": scale["num_choices"],
        "trials": scale["trials"],
        "seed": 777_777,
    }
    with _Server(
        "--workers", "2", "--coalesce-window-ms", "0", "--cache-entries", "256"
    ) as server:
        with ServeClient("127.0.0.1", server.port) as client:
            warm = client.raw_post("/v1/negotiate", payload)
            assert warm.status == 200, warm.body

        def replay(_: int) -> bytes:
            with ServeClient("127.0.0.1", server.port) as client:
                response = client.raw_post("/v1/negotiate", payload)
                assert response.status == 200, response.body
                return response.body

        disk_hits = 0
        replay_wall = 0.0
        # Fresh concurrent connections land on both workers of the
        # shared accept queue; a couple of waves makes the non-computing
        # worker's disk hit deterministic in practice.
        for _ in range(5):
            started = time.perf_counter()
            with ThreadPoolExecutor(max_workers=scale["clients"]) as pool:
                bodies = set(pool.map(replay, range(scale["clients"])))
            replay_wall = time.perf_counter() - started
            assert bodies == {warm.body}, "replayed bytes diverged"
            with ServeClient("127.0.0.1", server.port) as client:
                disk_hits = client.stats()["result_cache"]["disk_hits"]
            if disk_hits >= 1:
                break
    return replay_wall, disk_hits


def test_serve_throughput(paper_scale):
    scale_name = _scale_name(paper_scale)
    scale = _SCALES[scale_name]
    requests_total = scale["clients"] * scale["waves"]

    # Coalescing comparison: identical workloads, caching off on both
    # sides so cross-client batching is the only variable.  The
    # uncoalesced single-worker run doubles as the multi-worker tier's
    # reference.
    with _Server(
        "--coalesce-window-ms", "0", "--cache-entries", "0"
    ) as server:
        _warm_up(server.port, scale)
        uncoalesced, single_bodies = _drive(server.port, scale, seed_base=1000)

    with _Server(
        "--coalesce-window-ms", "50", "--max-batch", "32", "--cache-entries", "0"
    ) as server:
        _warm_up(server.port, scale)
        coalesced, _ = _drive(server.port, scale, seed_base=1000)
        with ServeClient("127.0.0.1", server.port) as client:
            coalescing_stats = client.stats()["coalescing"]

    # Multi-worker comparison: the identical uncoalesced workload
    # against the pre-fork supervisor.
    with _Server(
        "--workers", str(WORKERS),
        "--coalesce-window-ms", "0", "--cache-entries", "0",
    ) as server:
        _warm_up(server.port, scale, workers=WORKERS)
        multi_worker, multi_bodies = _drive(server.port, scale, seed_base=1000)

    # Cache comparison: the same seeds twice against a caching server.
    with _Server("--coalesce-window-ms", "50", "--cache-entries", "256") as server:
        _warm_up(server.port, scale)
        cold_cache, _ = _drive(server.port, scale, seed_base=2000)
        warm_cache, _ = _drive(server.port, scale, seed_base=2000)

    shared_replay_wall, shared_disk_hits = _shared_cache_probe(scale)

    coalesce_speedup = (
        uncoalesced / coalesced if coalesced > 0.0 else float("inf")
    )
    worker_speedup = (
        uncoalesced / multi_worker if multi_worker > 0.0 else float("inf")
    )
    cache_speedup = cold_cache / warm_cache if warm_cache > 0.0 else float("inf")
    emit(
        "serve",
        wall_time_s=coalesced,
        operations=requests_total,
        scale={"name": scale_name, **scale},
        extra={
            "uncoalesced_wall_time_s": uncoalesced,
            "coalesce_speedup": coalesce_speedup,
            "multi_worker_wall_time_s": multi_worker,
            "worker_speedup": worker_speedup,
            "workers": WORKERS,
            "cores": len(os.sched_getaffinity(0)),
            "cold_cache_wall_time_s": cold_cache,
            "warm_cache_wall_time_s": warm_cache,
            "cache_speedup": cache_speedup,
            "shared_cache_replay_wall_time_s": shared_replay_wall,
            "shared_cache_disk_hits": shared_disk_hits,
            "max_batch_size": coalescing_stats["max_batch_size"],
        },
    )
    print(
        f"\n[{scale_name}] {requests_total} requests x {scale['clients']} "
        f"clients: uncoalesced {uncoalesced:.3f}s, coalesced {coalesced:.3f}s "
        f"({coalesce_speedup:.1f}x); {WORKERS} workers {multi_worker:.3f}s "
        f"({worker_speedup:.1f}x); cache cold {cold_cache:.3f}s, "
        f"warm {warm_cache:.3f}s ({cache_speedup:.1f}x); "
        f"shared-cache replay {shared_replay_wall:.3f}s "
        f"({shared_disk_hits} disk hits)"
    )

    # The run must have actually batched across clients.
    assert coalescing_stats["max_batch_size"] > 1, coalescing_stats
    # Any worker's answer is every worker's answer, bit for bit.
    assert multi_bodies == single_bodies, (
        "multi-worker responses diverged from the single-worker bytes"
    )
    # A sibling worker served bytes it never computed.
    assert shared_disk_hits >= 1, (
        f"no cross-worker disk hit after 5 replay waves: {shared_disk_hits}"
    )
    # Warm-cache replay must beat recomputing at every scale.
    assert cache_speedup > 1.0, (
        f"cached replay slower than recompute: {cache_speedup:.2f}x"
    )
    if scale_name == "full":
        assert coalesce_speedup >= MIN_COALESCE_SPEEDUP, (
            f"coalescing speedup regressed: {coalesce_speedup:.1f}x < "
            f"{MIN_COALESCE_SPEEDUP:.0f}x at paper scale"
        )
        cores = len(os.sched_getaffinity(0))
        if cores >= WORKERS:
            assert worker_speedup >= MIN_WORKER_SPEEDUP, (
                f"multi-worker speedup regressed: {worker_speedup:.1f}x < "
                f"{MIN_WORKER_SPEEDUP:.0f}x at paper scale on {cores} cores"
            )
        elif cores >= 2:
            assert worker_speedup >= MIN_WORKER_SPEEDUP_FEW_CORES, (
                f"multi-worker speedup regressed: {worker_speedup:.1f}x < "
                f"{MIN_WORKER_SPEEDUP_FEW_CORES}x at paper scale on "
                f"{cores} cores"
            )
        else:
            print(f"[{scale_name}] 1 usable core: worker-speedup gate skipped")
