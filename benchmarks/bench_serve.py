"""Benchmark: ``repro serve`` throughput under concurrent clients.

The serve subsystem's performance claims are measured against a real
child-process server on an ephemeral port, driven by N concurrent
keep-alive clients posting negotiation envelopes:

- **coalesced vs. uncoalesced** — the same workload against a server
  with the coalescing window open vs. ``--coalesce-window-ms 0``
  (caching disabled on both, so only cross-client batching differs).
  At full (paper) scale — W=50, 8 clients × 25 trials per wave = the
  paper's 200 trials packed into one engine batch — the bench *asserts*
  the ≥ 2× throughput contract.
- **cold vs. warm cache** — the same request set twice against a
  caching server: the repeat pass must be served from the
  fingerprint-keyed byte cache.

Scales (``REPRO_BENCH_SCALE`` env var, or ``--paper-scale``): ``tiny``
(CI smoke), ``default``, ``full``.  The headline ``wall_time_s`` is the
coalesced run; every other measurement lands in ``extra`` of
``BENCH_serve.json``.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from _emit import emit

from repro.serve.client import ServeClient

_SCALES = {
    # Small enough for CI, large enough that a request is real work.
    "tiny": dict(clients=4, waves=2, num_choices=10, trials=5),
    "default": dict(clients=8, waves=3, num_choices=30, trials=10),
    # Paper scale: one coalesced wave is W=50 with 8×25 = 200 trials,
    # the Fig. 2 full-scale trial count, in a single engine batch.
    "full": dict(clients=8, waves=4, num_choices=50, trials=25),
}

#: The contracted coalescing speedup, asserted at full scale only —
#: at smoke scales the fixed per-request overhead dominates the solve.
MIN_COALESCE_SPEEDUP = 2.0

_SRC_DIR = str(Path(__file__).resolve().parent.parent / "src")


def _scale_name(paper_scale: bool) -> str:
    env = os.environ.get("REPRO_BENCH_SCALE")
    if env:
        if env not in _SCALES:
            raise ValueError(
                f"REPRO_BENCH_SCALE must be one of {sorted(_SCALES)}, got {env!r}"
            )
        return env
    return "full" if paper_scale else "default"


class _Server:
    """One ``repro serve`` child bound to an ephemeral port."""

    def __init__(self, *args: str) -> None:
        env = dict(os.environ)
        env["PYTHONPATH"] = _SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", "--port", "0", *args],
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            env=env,
            text=True,
        )
        line = self.proc.stdout.readline()
        self.port = int(re.search(r":(\d+)", line).group(1))

    def __enter__(self) -> "_Server":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.proc.kill()
        self.proc.wait(timeout=30)


def _drive(port: int, scale: dict, *, seed_base: int) -> float:
    """Run the concurrent workload once; returns the wall time."""

    def client_run(client_id: int) -> None:
        with ServeClient("127.0.0.1", port) as client:
            for wave in range(scale["waves"]):
                response = client.post(
                    "/negotiate",
                    {
                        "num_choices": scale["num_choices"],
                        "trials": scale["trials"],
                        "seed": seed_base + client_id * scale["waves"] + wave,
                    },
                )
                assert response.status == 200, response.body
    started = time.perf_counter()
    with ThreadPoolExecutor(max_workers=scale["clients"]) as pool:
        list(pool.map(client_run, range(scale["clients"])))
    return time.perf_counter() - started


def _warm_up(port: int, scale: dict) -> None:
    """Pay first-request costs (imports ran at fork; numpy warms here)."""
    with ServeClient("127.0.0.1", port) as client:
        client.post(
            "/negotiate",
            {"num_choices": scale["num_choices"], "trials": scale["trials"],
             "seed": 1},
        )


def test_serve_throughput(paper_scale):
    scale_name = _scale_name(paper_scale)
    scale = _SCALES[scale_name]
    requests_total = scale["clients"] * scale["waves"]

    # Coalescing comparison: identical workloads, caching off on both
    # sides so cross-client batching is the only variable.
    with _Server(
        "--coalesce-window-ms", "0", "--cache-entries", "0"
    ) as server:
        _warm_up(server.port, scale)
        uncoalesced = _drive(server.port, scale, seed_base=1000)

    with _Server(
        "--coalesce-window-ms", "50", "--max-batch", "32", "--cache-entries", "0"
    ) as server:
        _warm_up(server.port, scale)
        coalesced = _drive(server.port, scale, seed_base=1000)
        with ServeClient("127.0.0.1", server.port) as client:
            coalescing_stats = client.get("/stats").json()["coalescing"]

    # Cache comparison: the same seeds twice against a caching server.
    with _Server("--coalesce-window-ms", "50", "--cache-entries", "256") as server:
        _warm_up(server.port, scale)
        cold_cache = _drive(server.port, scale, seed_base=2000)
        warm_cache = _drive(server.port, scale, seed_base=2000)

    coalesce_speedup = (
        uncoalesced / coalesced if coalesced > 0.0 else float("inf")
    )
    cache_speedup = cold_cache / warm_cache if warm_cache > 0.0 else float("inf")
    emit(
        "serve",
        wall_time_s=coalesced,
        operations=requests_total,
        scale={"name": scale_name, **scale},
        extra={
            "uncoalesced_wall_time_s": uncoalesced,
            "coalesce_speedup": coalesce_speedup,
            "cold_cache_wall_time_s": cold_cache,
            "warm_cache_wall_time_s": warm_cache,
            "cache_speedup": cache_speedup,
            "max_batch_size": coalescing_stats["max_batch_size"],
        },
    )
    print(
        f"\n[{scale_name}] {requests_total} requests x {scale['clients']} "
        f"clients: uncoalesced {uncoalesced:.3f}s, coalesced {coalesced:.3f}s "
        f"({coalesce_speedup:.1f}x); cache cold {cold_cache:.3f}s, "
        f"warm {warm_cache:.3f}s ({cache_speedup:.1f}x)"
    )

    # The run must have actually batched across clients.
    assert coalescing_stats["max_batch_size"] > 1, coalescing_stats
    # Warm-cache replay must beat recomputing at every scale.
    assert cache_speedup > 1.0, (
        f"cached replay slower than recompute: {cache_speedup:.2f}x"
    )
    if scale_name == "full":
        assert coalesce_speedup >= MIN_COALESCE_SPEEDUP, (
            f"coalescing speedup regressed: {coalesce_speedup:.1f}x < "
            f"{MIN_COALESCE_SPEEDUP:.0f}x at paper scale"
        )
