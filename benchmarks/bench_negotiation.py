"""Benchmark: batched NegotiationEngine vs. per-trial BOSCO configuration.

The workload is the §V primitive behind Fig. 2 and behind every
marketplace agreement: configure a BOSCO mechanism by evaluating many
random choice-set trials (equilibrium search + Price of Dishonesty) and
summarize the PoD statistics.  The baseline is the pre-refactor
approach — :class:`repro.bargaining.mechanism.BoscoService` with
``backend="reference"``, one pure-Python trial at a time — and the
contender is the batched backend, which packs all trials of a
cardinality into one :class:`~repro.bargaining.engine.NegotiationEngine`
call.

Scales (``REPRO_BENCH_SCALE`` env var, or ``--paper-scale``):

- ``tiny`` — CI smoke scale: proves the harness and the bit-exactness
  assertion work, makes no speedup claim.
- ``default`` — the reduced experiment scale.
- ``full`` — the paper scale of Fig. 2: ``trials=200`` per cardinality
  with ``W`` up to 100; here the benchmark *asserts* the ≥ 5× speedup
  the batched engine is contracted to deliver.

Results are emitted to ``BENCH_negotiation.json`` via ``_emit``.
"""

from __future__ import annotations

import os
import time

from _emit import emit

from repro.bargaining.distributions import paper_distribution_u1
from repro.bargaining.mechanism import BoscoService

_SCALES = {
    "tiny": dict(choice_counts=(5, 10), trials=8),
    "default": dict(choice_counts=(10, 30), trials=40),
    "full": dict(choice_counts=(50, 100), trials=200),
}

#: The contracted minimum speedup at full (paper) scale.
FULL_SCALE_MIN_SPEEDUP = 5.0


def _scale_name(paper_scale: bool) -> str:
    env = os.environ.get("REPRO_BENCH_SCALE")
    if env:
        if env not in _SCALES:
            raise ValueError(
                f"REPRO_BENCH_SCALE must be one of {sorted(_SCALES)}, got {env!r}"
            )
        return env
    return "full" if paper_scale else "default"


def _pod_sweep(backend: str, choice_counts, trials: int, seed: int):
    """PoD statistics for every cardinality on one backend."""
    service = BoscoService(paper_distribution_u1(), seed=seed, backend=backend)
    return {
        num_choices: service.pod_statistics(num_choices, trials=trials)
        for num_choices in choice_counts
    }


def test_negotiation_engine_speedup(paper_scale):
    scale = _scale_name(paper_scale)
    seed = 7
    choice_counts = _SCALES[scale]["choice_counts"]
    trials = _SCALES[scale]["trials"]

    started = time.perf_counter()
    reference = _pod_sweep("reference", choice_counts, trials, seed)
    reference_time = time.perf_counter() - started

    started = time.perf_counter()
    batched = _pod_sweep("batched", choice_counts, trials, seed)
    engine_time = time.perf_counter() - started

    # The engine must agree with the reference bit for bit, at every
    # scale — not approximately: byte-identical seeded Fig. 2 tables
    # and marketplace traces hang off this equality.
    assert batched == reference

    speedup = reference_time / engine_time if engine_time > 0.0 else float("inf")
    emit(
        "negotiation",
        wall_time_s=engine_time,
        operations=len(choice_counts) * trials,
        scale={
            "name": scale,
            "seed": seed,
            "trials": trials,
            "choice_counts": list(choice_counts),
        },
        extra={
            "reference_wall_time_s": reference_time,
            "speedup": speedup,
            "mean_pod_at_largest_w": batched[choice_counts[-1]]["mean"],
        },
    )
    print(
        f"\n[{scale}] BOSCO configuration sweep, W={list(choice_counts)} x "
        f"{trials} trials: reference {reference_time:.3f}s, "
        f"batched {engine_time:.3f}s, speedup {speedup:.1f}x"
    )

    if scale == "full":
        assert speedup >= FULL_SCALE_MIN_SPEEDUP, (
            f"batched negotiation engine regressed: {speedup:.1f}x < "
            f"{FULL_SCALE_MIN_SPEEDUP:.0f}x at paper scale"
        )
