"""Ablation: peering density vs. the path-diversity gains of MAs.

DESIGN.md calls out the topology generator's peering density as the key
substitution parameter (the real AS graph's IXP peering is what makes
MAs so productive in §VI).  This ablation sweeps the IXP peering knobs
and reports how the MA path gains and the Fig. 5/6 improvement
fractions respond — the gains must grow monotonically with peering
density for the substitution argument to hold.
"""

from __future__ import annotations

from repro.agreements import enumerate_mutuality_agreements
from repro.experiments.reporting import format_table
from repro.paths import analyze_geodistance, analyze_path_diversity
from repro.topology.generator import InternetTopologyGenerator, TopologyParameters
from repro.topology.geography import SyntheticGeographyGenerator

#: (label, ixp membership probability, ixp peering probability)
DENSITY_LEVELS = (
    ("sparse", 0.2, 0.3),
    ("medium", 0.4, 0.6),
    ("dense (default-like)", 0.6, 0.8),
)


def _run_level(membership: float, peering: float) -> dict[str, float]:
    params = TopologyParameters(
        num_tier1=4,
        num_tier2=15,
        num_tier3=50,
        num_stubs=130,
        ixp_membership_probability=membership,
        ixp_peering_probability=peering,
        seed=17,
    )
    topology = InternetTopologyGenerator(params).generate()
    graph = topology.graph
    agreements = list(enumerate_mutuality_agreements(graph))
    diversity = analyze_path_diversity(
        graph, agreements=agreements, sample_size=80, seed=3
    )
    embedding = SyntheticGeographyGenerator(seed=3).embed(graph)
    geodistance = analyze_geodistance(
        graph, embedding, agreements=agreements, sample_size=25, seed=3
    )
    return {
        "peering_links": float(graph.num_peering_links()),
        "agreements": float(len(agreements)),
        "additional_paths_mean": diversity.additional_path_summary()["mean"],
        "geo_improving_fraction": geodistance.fraction_of_pairs_improving("min", 1),
    }


def test_peering_density_ablation(benchmark):
    results = benchmark.pedantic(
        lambda: [_run_level(m, p) for _, m, p in DENSITY_LEVELS],
        rounds=1,
        iterations=1,
    )

    rows = []
    for (label, _, _), result in zip(DENSITY_LEVELS, results):
        rows.append(
            [
                label,
                f"{result['peering_links']:.0f}",
                f"{result['agreements']:.0f}",
                f"{result['additional_paths_mean']:.0f}",
                f"{result['geo_improving_fraction']:.0%}",
            ]
        )
    print()
    print(
        format_table(
            [
                "peering density",
                "peering links",
                "MAs",
                "mean additional paths",
                "pairs beating GRC min geodistance",
            ],
            rows,
        )
    )

    gains = [result["additional_paths_mean"] for result in results]
    fractions = [result["geo_improving_fraction"] for result in results]
    assert gains == sorted(gains), "MA path gains must grow with peering density"
    assert fractions[-1] >= fractions[0], (
        "the share of improving pairs must not shrink with denser peering"
    )
