"""Benchmark: Fig. 3 — length-3 paths per AS under MA conclusion degrees.

Regenerates the six CDF series of Fig. 3 on the synthetic topology and
prints the per-scenario distribution plus the §VI-A headline statistics
(average / maximum additional paths per AS).  Headline numbers are also
emitted to ``BENCH_fig3_paths.json`` (see ``_emit``).
"""

from __future__ import annotations

import time
from dataclasses import asdict

from _emit import emit

from repro.experiments.fig3_paths import run_fig3
from repro.experiments.reporting import format_comparisons


def test_fig3_length3_paths(benchmark, run_once, diversity_config):
    started = time.perf_counter()
    result = run_once(run_fig3, diversity_config)
    emit(
        "fig3_paths",
        wall_time_s=time.perf_counter() - started,
        operations=diversity_config.sample_size,
        scale=asdict(diversity_config),
        extra={"num_agreements": result.num_agreements},
    )

    print()
    print(format_comparisons("Fig. 3 — length-3 paths per AS", result.comparisons()))
    print(result.report())

    diversity = result.diversity
    grc = diversity.path_cdf("GRC")
    ma_star = diversity.path_cdf("MA*")
    ma = diversity.path_cdf("MA")
    top1 = diversity.path_cdf("MA* (Top 1)")

    # Who wins, and in which order — the qualitative shape of Fig. 3.
    assert grc.mean < top1.mean <= ma_star.mean <= ma.mean
    # Concluding all MAs multiplies the number of available length-3 paths.
    assert ma.mean >= 1.5 * grc.mean
    # Most of the gain is available from directly negotiated agreements.
    assert (ma_star.mean - grc.mean) >= 0.5 * (ma.mean - grc.mean)
    # The single best agreement already gains a substantial share.
    assert (top1.mean - grc.mean) > 0.0
