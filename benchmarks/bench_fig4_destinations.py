"""Benchmark: Fig. 4 — destinations reachable over length-3 paths.

Regenerates the six CDF series of Fig. 4 and prints the per-scenario
distribution plus the §VI-A headline statistics (average / maximum
additionally reachable destinations per AS).  Headline numbers are also
emitted to ``BENCH_fig4_destinations.json`` (see ``_emit``).
"""

from __future__ import annotations

import time
from dataclasses import asdict

from _emit import emit

from repro.experiments.fig4_destinations import run_fig4
from repro.experiments.reporting import format_comparisons


def test_fig4_nearby_destinations(benchmark, run_once, diversity_config):
    started = time.perf_counter()
    result = run_once(run_fig4, diversity_config)
    emit(
        "fig4_destinations",
        wall_time_s=time.perf_counter() - started,
        operations=diversity_config.sample_size,
        scale=asdict(diversity_config),
        extra={"num_agreements": result.num_agreements},
    )

    print()
    print(format_comparisons("Fig. 4 — nearby destinations per AS", result.comparisons()))
    print(result.report())

    diversity = result.diversity
    grc = diversity.destination_cdf("GRC")
    ma = diversity.destination_cdf("MA")
    top5 = diversity.destination_cdf("MA* (Top 5)")

    # Concluding MAs enlarges the set of nearby destinations, and a handful
    # of agreements already captures much of the benefit (the Fig. 4 story).
    assert ma.mean > grc.mean
    assert top5.mean > grc.mean
    assert (top5.mean - grc.mean) >= 0.3 * (ma.mean - grc.mean)

    summary = diversity.additional_destination_summary()
    assert summary["mean"] > 0.0
