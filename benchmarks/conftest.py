"""Shared configuration for the benchmark harness.

Every figure of the paper's evaluation has one benchmark module.  The
benchmarks run each experiment exactly once (``benchmark.pedantic`` with
a single round) because the experiments are full analysis passes, not
micro-kernels; the interesting output is the paper-vs-measured report
each bench prints (run ``pytest benchmarks/ --benchmark-only -s`` to see
the reports inline, or read EXPERIMENTS.md for a recorded run).
"""

from __future__ import annotations

import pytest

from repro.experiments.fig2_pod import Fig2Config
from repro.experiments.fig3_paths import PathDiversityConfig
from repro.experiments.fig5_geodistance import Fig5Config
from repro.experiments.fig6_bandwidth import Fig6Config


def pytest_addoption(parser):
    parser.addoption(
        "--paper-scale",
        action="store_true",
        default=False,
        help="run the benchmarks at the paper's trial counts and sample sizes (slow)",
    )


@pytest.fixture(scope="session")
def paper_scale(request) -> bool:
    """Whether to run at full paper scale."""
    return request.config.getoption("--paper-scale")


@pytest.fixture(scope="session")
def fig2_config(paper_scale) -> Fig2Config:
    """Fig. 2 configuration (paper scale: 200 trials per cardinality)."""
    if paper_scale:
        return Fig2Config(trials=200)
    return Fig2Config(choice_counts=(10, 20, 30, 40, 50), trials=20)


@pytest.fixture(scope="session")
def diversity_config(paper_scale) -> PathDiversityConfig:
    """Shared Fig. 3/4 configuration."""
    if paper_scale:
        return PathDiversityConfig(sample_size=500)
    return PathDiversityConfig(
        num_tier1=6, num_tier2=25, num_tier3=80, num_stubs=250, sample_size=150
    )


@pytest.fixture(scope="session")
def fig5_config(diversity_config, paper_scale) -> Fig5Config:
    """Fig. 5 configuration."""
    return Fig5Config(
        diversity=diversity_config, pair_sample_size=80 if paper_scale else 40
    )


@pytest.fixture(scope="session")
def fig6_config(diversity_config, paper_scale) -> Fig6Config:
    """Fig. 6 configuration."""
    return Fig6Config(
        diversity=diversity_config, pair_sample_size=80 if paper_scale else 40
    )


@pytest.fixture()
def run_once(benchmark):
    """Run an experiment exactly once under the benchmark timer."""

    def runner(function, *args, **kwargs):
        return benchmark.pedantic(
            function, args=args, kwargs=kwargs, rounds=1, iterations=1
        )

    return runner
