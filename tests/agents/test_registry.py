"""Behavior registry: lookup, schema introspection, validation errors."""

import json

import pytest

from repro.agents import (
    BEHAVIORS,
    AdaptiveBehavior,
    AgentBehavior,
    behavior_catalog,
    behavior_parameters,
    build_behavior,
    register_behavior,
)
from repro.errors import ValidationError

BUILTIN_PROFILES = {"honest", "dishonest", "adaptive", "budget", "regional"}


def test_builtin_profiles_are_registered():
    assert BUILTIN_PROFILES <= set(BEHAVIORS)


def test_build_behavior_defaults_and_overrides():
    assert build_behavior("honest") == AgentBehavior()
    built = build_behavior("adaptive", {"learning_rate": 0.3, "num_choices": 8})
    assert built == AdaptiveBehavior(learning_rate=0.3, num_choices=8)


def test_unknown_profile_names_the_alternatives():
    with pytest.raises(ValidationError) as excinfo:
        build_behavior("chaotic")
    message = str(excinfo.value)
    assert "'chaotic'" in message
    for profile in BUILTIN_PROFILES:
        assert profile in message


def test_unknown_parameter_names_the_valid_ones():
    with pytest.raises(ValidationError) as excinfo:
        build_behavior("dishonest", {"greed": 2.0})
    message = str(excinfo.value)
    assert "'greed'" in message
    assert "shade" in message


def test_non_numeric_parameter_is_rejected():
    with pytest.raises(ValidationError, match="must be a number"):
        build_behavior("dishonest", {"shade": "lots"})


def test_integer_parameters_coerce_whole_floats_only():
    assert build_behavior("honest", {"num_choices": 4.0}).num_choices == 4
    with pytest.raises(ValidationError, match="must be an integer"):
        build_behavior("honest", {"num_choices": 4.5})


def test_behavior_parameters_expose_the_schema():
    rows = {row["name"]: row for row in behavior_parameters("adaptive")}
    assert rows["learning_rate"]["default"] == 0.1
    assert rows["learning_rate"]["doc"]
    assert rows["num_choices"]["type"] in ("int", int)


def test_catalog_is_sorted_and_json_safe():
    catalog = behavior_catalog()
    names = [entry["profile"] for entry in catalog]
    assert names == sorted(names)
    assert BUILTIN_PROFILES <= set(names)
    json.dumps(catalog)  # strictly serializable
    for entry in catalog:
        assert entry["description"]
        assert isinstance(entry["parameters"], list)


def test_register_rejects_profile_collisions():
    class Impostor(AgentBehavior):
        profile = "honest"

    with pytest.raises(ValidationError, match="already registered"):
        register_behavior(Impostor)
    # Re-registering the same class is idempotent.
    assert register_behavior(AgentBehavior) is AgentBehavior
