"""Behavior profiles: parameter validation and per-hook semantics."""

import math

import pytest

from repro.agents import (
    NUM_REGIONS,
    REGION_PRICE_TIERS,
    AdaptiveBehavior,
    AgentBehavior,
    BudgetBehavior,
    DishonestBehavior,
    RegionalBehavior,
)
from repro.errors import ValidationError


def state_for(behavior, asn=1, region=0):
    return behavior.new_state(asn, region)


class TestHonest:
    def test_reports_true_utility_and_never_vetoes(self):
        behavior = AgentBehavior()
        state = state_for(behavior)
        assert behavior.reported_utility(-3.5, state) == -3.5
        assert behavior.max_spend(state) == math.inf
        assert behavior.price_multiplier(state) == 1.0

    def test_num_choices_must_be_non_negative(self):
        with pytest.raises(ValidationError, match="num_choices"):
            AgentBehavior(num_choices=-1)


class TestDishonest:
    def test_shades_the_report_toward_less_favourable(self):
        behavior = DishonestBehavior(shade=0.25)
        state = state_for(behavior)
        assert behavior.reported_utility(4.0, state) == 4.0 - 0.25 * 4.0
        assert behavior.reported_utility(-4.0, state) == -4.0 - 0.25 * 4.0

    def test_shade_bounds(self):
        with pytest.raises(ValidationError, match="shade"):
            DishonestBehavior(shade=1.5)
        with pytest.raises(ValidationError, match="shade"):
            DishonestBehavior(shade=-0.1)


class TestAdaptive:
    def test_caution_rises_on_losses_and_relaxes_on_profits(self):
        behavior = AdaptiveBehavior(learning_rate=0.2, initial_caution=0.0)
        state = state_for(behavior)
        behavior.on_billing(-1.0, state)
        assert state.caution == pytest.approx(0.2)
        behavior.on_billing(5.0, state)
        assert state.caution == pytest.approx(0.1)

    def test_caution_is_clamped_to_max(self):
        behavior = AdaptiveBehavior(learning_rate=0.5, max_caution=0.6)
        state = state_for(behavior)
        for _ in range(5):
            behavior.on_billing(-1.0, state)
        assert state.caution == pytest.approx(0.6)

    def test_report_is_shaded_by_current_caution(self):
        behavior = AdaptiveBehavior(initial_caution=0.3)
        state = state_for(behavior)
        assert behavior.reported_utility(2.0, state) == pytest.approx(2.0 - 0.3 * 2.0)

    def test_parameter_validation(self):
        with pytest.raises(ValidationError, match="learning_rate"):
            AdaptiveBehavior(learning_rate=0.0)
        with pytest.raises(ValidationError, match="initial_caution"):
            AdaptiveBehavior(initial_caution=2.0)


class TestBudget:
    def test_spend_is_capped_and_deducted(self):
        behavior = BudgetBehavior(budget=10.0)
        state = state_for(behavior)
        assert behavior.max_spend(state) == 10.0
        behavior.commit_spend(4.0, state)
        assert state.budget_remaining == pytest.approx(6.0)
        assert behavior.max_spend(state) == pytest.approx(6.0)
        assert state.spend_total == pytest.approx(4.0)

    def test_budget_must_be_non_negative_and_finite(self):
        with pytest.raises(ValidationError, match="budget"):
            BudgetBehavior(budget=-1.0)
        with pytest.raises(ValidationError, match="budget"):
            BudgetBehavior(budget=math.inf)


class TestRegional:
    def test_multiplier_interpolates_the_region_tier(self):
        for region in range(NUM_REGIONS):
            full = RegionalBehavior(intensity=1.0)
            flat = RegionalBehavior(intensity=0.0)
            assert full.price_multiplier(state_for(full, region=region)) == (
                pytest.approx(REGION_PRICE_TIERS[region])
            )
            assert flat.price_multiplier(state_for(flat, region=region)) == 1.0

    def test_intensity_bounds(self):
        with pytest.raises(ValidationError, match="intensity"):
            RegionalBehavior(intensity=-0.5)
