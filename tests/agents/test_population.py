"""Population specs: parsing, validation taxonomy, seeded resolution."""

import json

import pytest

from repro.agents import (
    NUM_REGIONS,
    GroupMatch,
    Population,
    PopulationGroup,
    PopulationSpec,
    assign_regions,
    default_population_spec,
)
from repro.errors import ValidationError
from repro.topology.generator import generate_topology


@pytest.fixture(scope="module")
def graph():
    return generate_topology(
        num_tier1=3, num_tier2=6, num_tier3=12, num_stubs=30, seed=11
    ).graph


SPEC_DATA = {
    "name": "test-pop",
    "seed": 5,
    "default_profile": "honest",
    "groups": [
        {
            "profile": "dishonest",
            "params": {"shade": 0.4},
            "match": {"role": "stub", "fraction": 0.5},
        },
        {"profile": "budget", "params": {"budget": 5.0}, "match": {"role": "tier1"}},
    ],
}


class TestParsing:
    def test_round_trip_through_as_dict(self):
        spec = PopulationSpec.from_mapping(SPEC_DATA)
        again = PopulationSpec.from_mapping(spec.as_dict())
        assert again == spec

    def test_load_reads_a_json_file(self, tmp_path):
        path = tmp_path / "pop.json"
        path.write_text(json.dumps(SPEC_DATA), encoding="utf-8")
        assert PopulationSpec.load(path) == PopulationSpec.from_mapping(SPEC_DATA)

    def test_missing_file_is_a_validation_error(self, tmp_path):
        with pytest.raises(ValidationError, match="cannot read population spec"):
            PopulationSpec.load(tmp_path / "absent.json")

    def test_invalid_json_is_a_validation_error(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(ValidationError, match="not valid JSON"):
            PopulationSpec.load(path)

    def test_unknown_top_level_key_is_named(self):
        with pytest.raises(ValidationError) as excinfo:
            PopulationSpec.from_mapping({**SPEC_DATA, "warp": 1})
        assert "'warp'" in str(excinfo.value)
        assert "default_profile" in str(excinfo.value)

    def test_unknown_match_key_is_named(self):
        with pytest.raises(ValidationError, match="'speed'"):
            GroupMatch.from_mapping({"speed": 3})

    def test_group_without_profile_is_rejected(self):
        with pytest.raises(ValidationError, match="'profile'"):
            PopulationGroup.from_mapping({"match": {"role": "stub"}})

    def test_bad_values_are_rejected(self):
        with pytest.raises(ValidationError, match="unknown role"):
            GroupMatch(role="wizard")
        with pytest.raises(ValidationError, match="fraction"):
            GroupMatch(fraction=0.0)
        with pytest.raises(ValidationError, match="region"):
            GroupMatch(region=NUM_REGIONS)
        with pytest.raises(ValidationError, match="seed"):
            PopulationSpec(seed=-1)


class TestRegions:
    def test_assignment_is_deterministic_and_order_independent(self, graph):
        regions = assign_regions(graph, seed=3)
        assert regions == assign_regions(graph, seed=3)
        assert set(regions) == set(graph)
        assert all(0 <= region < NUM_REGIONS for region in regions.values())

    def test_seed_changes_the_embedding(self, graph):
        assert assign_regions(graph, seed=3) != assign_regions(graph, seed=4)


class TestResolution:
    def test_groups_apply_in_order_with_later_overrides(self, graph):
        spec = PopulationSpec.from_mapping(
            {
                "name": "override",
                "groups": [
                    {"profile": "dishonest"},
                    {"profile": "budget", "match": {"role": "tier1"}},
                ],
            }
        )
        population = spec.resolve(graph)
        tier1 = graph.tier1_ases()
        for asn in graph:
            expected = "budget" if asn in tier1 else "dishonest"
            assert population.behavior_for(asn).profile == expected

    def test_fraction_sampling_is_seeded_and_sized(self, graph):
        spec = PopulationSpec.from_mapping(SPEC_DATA)
        population = spec.resolve(graph)
        again = spec.resolve(graph)
        assert population.census() == again.census()
        assert {a for a, b in population.behaviors.items() if b.profile == "dishonest"} == {
            a for a, b in again.behaviors.items() if b.profile == "dishonest"
        }
        stubs = [asn for asn in graph if graph.is_stub(asn)]
        assert population.census()["dishonest"] == max(1, round(0.5 * len(stubs)))

    def test_census_counts_every_as(self, graph):
        population = PopulationSpec.from_mapping(SPEC_DATA).resolve(graph)
        assert sum(population.census().values()) == len(graph)

    def test_unknown_as_falls_back_to_honest(self, graph):
        population = PopulationSpec().resolve(graph)
        assert population.behavior_for(10**9).profile == "honest"
        assert population.region_of(10**9) == 0

    def test_choice_widths_include_default_and_preferences(self, graph):
        spec = PopulationSpec.from_mapping(
            {
                "name": "widths",
                "groups": [{"profile": "adaptive", "params": {"num_choices": 8}}],
            }
        )
        assert spec.resolve(graph).choice_widths(20) == (8, 20)
        assert PopulationSpec().resolve(graph).choice_widths(20) == (20,)


class TestBuiltinSpec:
    def test_mixes_at_least_four_profiles(self, graph):
        population = default_population_spec(seed=2021).resolve(graph)
        assert len(population.census()) >= 4

    def test_population_type_is_exported(self, graph):
        assert isinstance(default_population_spec().resolve(graph), Population)
