"""Tests for the BGP, PAN, and GRC routing services over a dynamic topology."""

import pytest

from repro.simulation import (
    AvailabilityMonitor,
    BGPRoutingService,
    DynamicNetwork,
    GRCPathAvailabilityService,
    PANRoutingService,
    SimulationEngine,
)
from repro.topology.graph import ASGraph


@pytest.fixture()
def diamond() -> ASGraph:
    """Two peering tier-1s (1, 2), both providers of stubs 3 and 4."""
    graph = ASGraph()
    graph.add_peering(1, 2)
    graph.add_provider_customer(1, 3)
    graph.add_provider_customer(2, 3)
    graph.add_provider_customer(1, 4)
    graph.add_provider_customer(2, 4)
    return graph


def build(diamond, *, reconvergence_delay=1.0, beacon_interval=100.0):
    engine = SimulationEngine()
    network = DynamicNetwork(diamond)
    bgp = BGPRoutingService(
        network=network, destinations=(4,), reconvergence_delay=reconvergence_delay
    )
    pan = PANRoutingService(network=network, beacon_interval=beacon_interval)
    engine.add_process(bgp)
    engine.add_process(pan)
    engine.run(until=0.0)
    return engine, network, bgp, pan


class TestBGPRoutingService:
    def test_initial_route_and_availability(self, diamond):
        _, _, bgp, _ = build(diamond)
        assert bgp.route(3, 4) == (3, 1, 4)
        assert bgp.is_available(3, 4)

    def test_stale_route_blackholes_until_reconvergence(self, diamond):
        engine, network, bgp, _ = build(diamond, reconvergence_delay=1.0)
        network.fail_link(1, 4, time=engine.now)
        # The stale route still points over the failed link.
        assert bgp.route(3, 4) == (3, 1, 4)
        assert not bgp.is_available(3, 4)
        engine.run(until=2.0)
        # Reconvergence found the alternative through AS 2.
        assert bgp.route(3, 4) == (3, 2, 4)
        assert bgp.is_available(3, 4)
        assert bgp.reconvergences == 1
        assert len(engine.trace.of_kind("bgp_reconverged")) == 1

    def test_changes_within_one_window_reconverge_once(self, diamond):
        engine, network, bgp, _ = build(diamond, reconvergence_delay=1.0)
        network.fail_link(1, 4, time=0.0)
        engine.run(until=0.5)
        network.fail_link(1, 3, time=0.5)
        engine.run(until=5.0)
        assert bgp.reconvergences == 1
        assert bgp.route(3, 4) == (3, 2, 4)

    def test_partitioned_destination_stays_unavailable(self, diamond):
        engine, network, bgp, _ = build(diamond, reconvergence_delay=1.0)
        network.fail_link(1, 4, time=0.0)
        engine.run(until=0.5)
        network.fail_link(2, 4, time=0.5)
        engine.run(until=5.0)
        assert bgp.route(3, 4) is None
        assert not bgp.is_available(3, 4)


class TestPANRoutingService:
    def test_beaconing_discovers_multiple_paths(self, diamond):
        _, _, _, pan = build(diamond)
        paths = pan.paths(3, 4)
        assert (3, 1, 4) in paths
        assert (3, 2, 4) in paths
        assert len(paths) >= 2

    def test_instant_failover_without_rebeaconing(self, diamond):
        engine, network, _, pan = build(diamond)
        network.fail_link(1, 4, time=engine.now)
        # No beaconing has happened since the failure, yet the source
        # simply picks another of its known paths.
        assert pan.beaconing_runs == 1
        assert pan.is_available(3, 4)

    def test_unavailable_only_when_all_paths_break(self, diamond):
        engine, network, _, pan = build(diamond)
        network.fail_link(1, 4, time=0.0)
        network.fail_link(2, 4, time=0.0)
        assert not pan.is_available(3, 4)

    def test_periodic_beaconing_reruns(self, diamond):
        engine, _, _, pan = build(diamond, beacon_interval=1.0)
        engine.run(until=3.0)
        assert pan.beaconing_runs == 4  # t = 0, 1, 2, 3
        assert len(engine.trace.of_kind("beaconing_completed")) == 4


class TestGRCPathAvailabilityService:
    def build_grc(self, diamond):
        engine = SimulationEngine()
        network = DynamicNetwork(diamond)
        grc = GRCPathAvailabilityService(network=network)
        engine.add_process(grc)
        engine.run(until=0.0)
        return engine, network, grc

    def test_direct_link_counts_as_available(self, diamond):
        _, _, grc = self.build_grc(diamond)
        assert grc.is_available(1, 3)  # provider–customer link
        assert grc.is_available(1, 2)  # peering link

    def test_length3_paths_provide_availability(self, diamond):
        _, _, grc = self.build_grc(diamond)
        # 3 and 4 are not adjacent but share providers 1 and 2.
        assert grc.is_available(3, 4)

    def test_tracks_churn_instantly_without_reconvergence_delay(self, diamond):
        engine, network, grc = self.build_grc(diamond)
        network.fail_link(1, 4, time=engine.now)
        assert grc.is_available(3, 4)  # still via AS 2
        network.fail_link(2, 4, time=engine.now)
        assert not grc.is_available(3, 4)  # 4 is cut off
        network.restore_link(1, 4, time=engine.now)
        assert grc.is_available(3, 4)

    def test_churn_events_are_traced(self, diamond):
        engine, network, grc = self.build_grc(diamond)
        network.fail_link(1, 4, time=0.0)
        network.restore_link(1, 4, time=0.5)
        records = engine.trace.of_kind("grc_engine_invalidated")
        assert [record.data["change"] for record in records] == [
            "link_down",
            "link_up",
        ]

    def test_slots_into_the_availability_monitor(self, diamond):
        engine = SimulationEngine()
        network = DynamicNetwork(diamond)
        grc = GRCPathAvailabilityService(network=network)
        monitor = AvailabilityMonitor(
            services=(grc,), pairs=((3, 4),), sample_interval=1.0
        )
        for process in (grc, monitor):
            engine.add_process(process)
        trace = engine.run(until=2.0)
        assert trace.availability("GRC-L3") == 1.0


class TestAvailabilityMonitor:
    def test_samples_both_architectures(self, diamond):
        engine = SimulationEngine()
        network = DynamicNetwork(diamond)
        bgp = BGPRoutingService(network=network, destinations=(4,))
        pan = PANRoutingService(network=network)
        monitor = AvailabilityMonitor(
            services=(bgp, pan), pairs=((3, 4),), sample_interval=1.0
        )
        for process in (bgp, pan, monitor):
            engine.add_process(process)
        trace = engine.run(until=2.0)
        samples = trace.of_kind("availability_sample")
        assert len(samples) == 6  # 3 sampling instants x 2 architectures
        assert trace.architectures() == ("BGP", "PAN")
        assert trace.availability("BGP") == 1.0
        assert trace.availability("PAN") == 1.0
