"""Compiled-topology invalidation under simulated link failure/recovery churn.

Drives a :class:`DynamicNetwork` through failure and recovery events and
asserts that the recompile-on-churn contract holds: the compiled active
view and the shared path engine always answer for the *current* active
topology, memoized results of ASes outside the dirty region survive a
recompile, and the answers match a from-scratch naive enumeration after
every single event.
"""

import random

import pytest

from repro.paths.grc import iter_grc_length3_paths
from repro.simulation import DynamicNetwork
from repro.topology import figure1_topology
from repro.topology.fixtures import AS_A, AS_D, AS_E, AS_H, AS_I
from repro.topology.generator import generate_topology


@pytest.fixture()
def network():
    return DynamicNetwork(figure1_topology())


def _naive(graph, source):
    return frozenset(iter_grc_length3_paths(graph, source))


class TestCompiledActive:
    def test_compiled_view_tracks_the_active_graph(self, network):
        compiled = network.compiled_active()
        assert compiled.has_link(AS_D, AS_E)
        network.fail_link(AS_D, AS_E)
        recompiled = network.compiled_active()
        assert recompiled is not compiled
        assert not recompiled.has_link(AS_D, AS_E)

    def test_compiled_view_is_cached_between_changes(self, network):
        assert network.compiled_active() is network.compiled_active()
        before = network.recompiles
        network.compiled_active()
        assert network.recompiles == before

    def test_recovery_recompiles_too(self, network):
        network.fail_link(AS_D, AS_E)
        failed_view = network.compiled_active()
        network.restore_link(AS_D, AS_E)
        assert network.compiled_active() is not failed_view
        assert network.compiled_active().has_link(AS_D, AS_E)


class TestEngineInvalidation:
    def test_engine_answers_for_the_current_active_topology(self, network):
        engine = network.path_engine()
        assert (AS_H, AS_D, AS_E) in engine.paths(AS_H)
        network.fail_link(AS_D, AS_E)
        engine = network.path_engine()
        assert (AS_H, AS_D, AS_E) not in engine.paths(AS_H)
        network.restore_link(AS_D, AS_E)
        assert (AS_H, AS_D, AS_E) in network.path_engine().paths(AS_H)

    def test_clean_sources_survive_a_dirty_recompile(self, network):
        engine = network.path_engine()
        clean = engine.paths(AS_I)  # I neighbors only E; D–H churn cannot touch it
        network.fail_link(AS_D, AS_H)
        refreshed = network.path_engine()
        assert refreshed is engine  # same engine object, refreshed in place
        assert refreshed.paths(AS_I) is clean

    def test_dirty_sources_are_recomputed(self, network):
        engine = network.path_engine()
        engine.paths(AS_A)
        network.fail_link(AS_D, AS_H)
        refreshed = network.path_engine()
        active = network.active_graph()
        assert refreshed.paths(AS_A) == _naive(active, AS_A)
        assert refreshed.paths(AS_D) == _naive(active, AS_D)

    def test_engine_matches_naive_after_every_churn_event(self):
        topology = generate_topology(
            num_tier1=3, num_tier2=8, num_tier3=20, num_stubs=60, seed=23
        )
        network = DynamicNetwork(topology.graph)
        links = [(link.first, link.second) for link in topology.graph.links]
        rng = random.Random(7)
        probes = sorted(topology.graph.ases)[::17]

        failed: list[tuple[int, int]] = []
        for step in range(20):
            if failed and rng.random() < 0.45:
                left, right = failed.pop(rng.randrange(len(failed)))
                network.restore_link(left, right, time=float(step))
            else:
                left, right = links[rng.randrange(len(links))]
                if not network.fail_link(left, right, time=float(step)):
                    continue
                failed.append((left, right))
            engine = network.path_engine()
            active = network.active_graph()
            for source in probes:
                assert engine.paths(source) == _naive(active, source)
                assert engine.count(source) == len(_naive(active, source))
                assert engine.destinations(source) == {
                    p[2] for p in _naive(active, source)
                }

    def test_batched_counts_match_after_churn(self, network):
        network.path_engine().counts_by_source()
        network.fail_link(AS_D, AS_E)
        engine = network.path_engine()
        active = network.active_graph()
        assert engine.counts_by_source() == {
            asn: len(_naive(active, asn)) for asn in active
        }
