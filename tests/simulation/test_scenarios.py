"""Tests for the canned scenarios: behaviour and reproducibility."""

import pytest

from repro.simulation import (
    SCENARIOS,
    AgreementMarketplaceScenario,
    FailureChurnScenario,
    FlashCrowdScenario,
    run_scenario,
)


def small_churn(seed: int = 5) -> FailureChurnScenario:
    """A failure-churn configuration small enough for the test suite."""
    return FailureChurnScenario(
        seed=seed,
        duration=24.0,
        num_tier2=4,
        num_tier3=8,
        num_stubs=14,
        num_pairs=4,
        mean_time_to_failure=40.0,
        mean_time_to_repair=3.0,
    )


class TestFailureChurn:
    def test_pan_availability_dominates_bgp(self):
        result = small_churn().run()
        trace = result.trace
        assert trace.of_kind("link_event"), "expected churn over the horizon"
        assert trace.availability("PAN") >= trace.availability("BGP")

    def test_summary_reports_both_architectures(self):
        result = small_churn().run()
        summary = result.summary()
        assert "BGP" in summary and "PAN" in summary
        assert "PAN >= BGP availability: True" in summary

    def test_same_seed_byte_identical_trace(self):
        trace_a = small_churn(seed=9).run().trace_text()
        trace_b = small_churn(seed=9).run().trace_text()
        assert trace_a == trace_b

    def test_different_seed_changes_the_trace(self):
        trace_a = small_churn(seed=9).run().trace_text()
        trace_b = small_churn(seed=10).run().trace_text()
        assert trace_a != trace_b


class TestMarketplace:
    def test_agreements_are_billed_and_renegotiated(self):
        result = AgreementMarketplaceScenario(
            duration=24.0 * 15.0, term_duration=24.0 * 5.0, metering_interval=2.0
        ).run()
        trace = result.trace
        assert trace.of_kind("negotiation")
        assert trace.of_kind("billing")
        assert trace.revenue_by_as()
        # Renegotiation keeps the marketplace turning: more activations
        # than peering pairs.
        activations = trace.of_kind("agreement_activated")
        pairs = {tuple(r.data["pair"]) for r in activations}
        assert len(activations) > len(pairs)


class TestFlashCrowd:
    def test_crowd_inflates_the_p95_bill(self):
        calm = FlashCrowdScenario(crowd_multiplier=1.0).run()
        spiky = FlashCrowdScenario(crowd_multiplier=6.0).run()

        def billed(result):
            record = result.trace.of_kind("billing")[0]
            return max(
                float(record.data["billed_volume_x"]),
                float(record.data["billed_volume_y"]),
            )

        assert billed(spiky) > billed(calm)

    def test_summary_mentions_the_bill(self):
        result = FlashCrowdScenario().run()
        assert "billed p95 volume" in result.summary()


class TestRegistry:
    def test_all_scenarios_registered(self):
        assert set(SCENARIOS) == {
            "failure-churn",
            "marketplace",
            "flash-crowd",
            "marketplace-heterogeneous",
        }

    def test_run_scenario_applies_overrides(self):
        result = run_scenario("flash-crowd", seed=3, duration=30.0)
        assert result.seed == 3
        assert result.duration == 30.0

    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError):
            run_scenario("does-not-exist")
