"""Tests for the dynamic-topology wrapper."""

import pytest

from repro.simulation import DynamicNetwork
from repro.topology import TopologyError, figure1_topology
from repro.topology.fixtures import AS_A, AS_B, AS_D, AS_E


@pytest.fixture()
def network():
    return DynamicNetwork(figure1_topology())


class TestFailureState:
    def test_links_start_up(self, network):
        assert network.is_link_up(AS_D, AS_E)
        assert network.num_failed_links() == 0

    def test_fail_and_restore(self, network):
        assert network.fail_link(AS_D, AS_E)
        assert not network.is_link_up(AS_D, AS_E)
        assert network.failed_links == ((AS_D, AS_E),)
        assert network.restore_link(AS_D, AS_E)
        assert network.is_link_up(AS_D, AS_E)
        assert network.num_failed_links() == 0

    def test_double_fail_and_double_restore_are_noops(self, network):
        assert network.fail_link(AS_D, AS_E)
        assert not network.fail_link(AS_D, AS_E)
        assert network.restore_link(AS_D, AS_E)
        assert not network.restore_link(AS_D, AS_E)

    def test_failing_a_missing_link_raises(self, network):
        with pytest.raises(TopologyError):
            network.fail_link(AS_A, AS_E)

    def test_unknown_link_is_not_up(self, network):
        assert not network.is_link_up(AS_A, AS_E)


class TestSnapshots:
    def test_active_graph_drops_failed_links_but_keeps_ases(self, network):
        base_links = network.base_graph.num_links()
        network.fail_link(AS_D, AS_E)
        active = network.active_graph()
        assert active.num_links() == base_links - 1
        assert not active.has_link(AS_D, AS_E)
        assert len(active) == len(network.base_graph)

    def test_active_graph_cache_invalidated_on_change(self, network):
        first = network.active_graph()
        assert network.active_graph() is first
        network.fail_link(AS_D, AS_E)
        assert network.active_graph() is not first

    def test_path_intactness(self, network):
        assert network.path_is_intact((AS_B, AS_E, AS_D))
        network.fail_link(AS_D, AS_E)
        assert not network.path_is_intact((AS_B, AS_E, AS_D))
        assert network.path_is_intact((AS_B, AS_E))
        assert not network.path_is_intact((AS_B,))


class TestNotifications:
    def test_listeners_observe_changes_in_order(self, network):
        seen = []
        network.subscribe(lambda time, change, link: seen.append((time, change, link)))
        network.fail_link(AS_E, AS_D, time=1.5)
        network.restore_link(AS_E, AS_D, time=2.5)
        assert seen == [
            (1.5, "link_down", (AS_D, AS_E)),
            (2.5, "link_up", (AS_D, AS_E)),
        ]

    def test_noop_changes_do_not_notify(self, network):
        seen = []
        network.fail_link(AS_D, AS_E)
        network.subscribe(lambda *args: seen.append(args))
        network.fail_link(AS_D, AS_E)
        assert seen == []

    def test_version_counts_changes(self, network):
        assert network.version == 0
        network.fail_link(AS_D, AS_E)
        network.restore_link(AS_D, AS_E)
        assert network.version == 2
