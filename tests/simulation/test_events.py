"""Tests for the event queue and the virtual clock."""

import pytest

from repro.simulation import EventQueue, SimulationClock, SimulationError


class TestEventQueue:
    def test_pops_in_time_order(self):
        queue = EventQueue()
        fired = []
        queue.push(3.0, lambda: fired.append("c"))
        queue.push(1.0, lambda: fired.append("a"))
        queue.push(2.0, lambda: fired.append("b"))
        while queue:
            queue.pop().action()
        assert fired == ["a", "b", "c"]

    def test_same_time_ties_broken_by_priority_then_fifo(self):
        queue = EventQueue()
        queue.push(1.0, lambda: None, name="first")
        queue.push(1.0, lambda: None, name="second")
        queue.push(1.0, lambda: None, priority=-1, name="urgent")
        assert [queue.pop().name for _ in range(3)] == ["urgent", "first", "second"]

    def test_tie_break_is_deterministic_across_builds(self):
        def build() -> list[str]:
            queue = EventQueue()
            for index in range(20):
                queue.push(float(index % 3), lambda: None, name=f"e{index}")
            return [queue.pop().name for _ in range(20)]

        assert build() == build()

    def test_cancelled_events_are_skipped(self):
        queue = EventQueue()
        keep = queue.push(1.0, lambda: None, name="keep")
        drop = queue.push(0.5, lambda: None, name="drop")
        queue.cancel(drop)
        assert len(queue) == 1
        assert queue.pop() is keep
        assert not queue

    def test_peek_time_skips_cancelled(self):
        queue = EventQueue()
        drop = queue.push(0.5, lambda: None)
        queue.push(2.0, lambda: None)
        queue.cancel(drop)
        assert queue.peek_time() == 2.0

    def test_pop_from_empty_queue_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()

    def test_negative_time_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().push(-1.0, lambda: None)


class TestSimulationClock:
    def test_starts_at_zero_and_advances(self):
        clock = SimulationClock()
        assert clock.now == 0.0
        clock.advance_to(3.5)
        assert clock.now == 3.5

    def test_advancing_to_the_same_time_is_allowed(self):
        clock = SimulationClock()
        clock.advance_to(1.0)
        clock.advance_to(1.0)
        assert clock.now == 1.0

    def test_moving_backwards_raises(self):
        clock = SimulationClock()
        clock.advance_to(2.0)
        with pytest.raises(SimulationError):
            clock.advance_to(1.0)
