"""Marketplace shocks: regional partitions and price wars."""

import pytest

from repro.agents import assign_regions
from repro.simulation.events import SimulationError
from repro.simulation.failures import LINK_DOWN, LINK_UP
from repro.simulation.shocks import PriceWar, RegionalPartition
from repro.topology.generator import generate_topology


@pytest.fixture(scope="module")
def graph():
    return generate_topology(
        num_tier1=3, num_tier2=6, num_tier3=12, num_stubs=30, seed=11
    ).graph


class TestRegionalPartition:
    def test_schedule_covers_exactly_the_boundary_links(self, graph):
        regions = assign_regions(graph, seed=2021)
        partition = RegionalPartition(region=2, start=10.0, duration=5.0)
        schedule = partition.failure_schedule(graph, regions)
        boundary = {
            frozenset((link.first, link.second))
            for link in graph.links
            if (regions[link.first] == 2) != (regions[link.second] == 2)
        }
        assert boundary, "fixture topology must cross the partitioned region"
        downs = [e for e in schedule.events if e.kind == LINK_DOWN]
        ups = [e for e in schedule.events if e.kind == LINK_UP]
        assert {frozenset((e.left, e.right)) for e in downs} == boundary
        assert {frozenset((e.left, e.right)) for e in ups} == boundary
        assert all(e.time == 10.0 for e in downs)
        assert all(e.time == 15.0 for e in ups)

    def test_interior_links_are_untouched(self, graph):
        regions = {asn: 0 for asn in graph}  # whole topology in one region
        schedule = RegionalPartition(region=0, start=1.0, duration=1.0).failure_schedule(
            graph, regions
        )
        assert schedule.events == ()

    def test_parameter_validation(self):
        with pytest.raises(SimulationError, match="region"):
            RegionalPartition(region=-1, start=0.0, duration=1.0)
        with pytest.raises(SimulationError, match="start"):
            RegionalPartition(region=0, start=-1.0, duration=1.0)
        with pytest.raises(SimulationError, match="duration"):
            RegionalPartition(region=0, start=0.0, duration=0.0)


class TestPriceWar:
    def test_multiplier_applies_only_inside_the_window(self):
        war = PriceWar(start=10.0, duration=5.0, multiplier=0.5, region=3)
        assert war.multiplier_at(9.999, 3) == 1.0
        assert war.multiplier_at(10.0, 3) == 0.5
        assert war.multiplier_at(14.999, 3) == 0.5
        assert war.multiplier_at(15.0, 3) == 1.0  # half-open window

    def test_region_scoping(self):
        scoped = PriceWar(start=0.0, duration=1.0, multiplier=0.5, region=3)
        assert scoped.multiplier_at(0.5, 2) == 1.0
        everywhere = PriceWar(start=0.0, duration=1.0, multiplier=0.5)
        assert everywhere.multiplier_at(0.5, 2) == 0.5

    def test_parameter_validation(self):
        with pytest.raises(SimulationError, match="multiplier"):
            PriceWar(start=0.0, duration=1.0, multiplier=0.0)
        with pytest.raises(SimulationError, match="duration"):
            PriceWar(start=0.0, duration=-2.0)
