"""Tests for the agreement lifecycle process."""

import pytest

from repro.simulation import (
    AgreementLifecycleManager,
    DynamicNetwork,
    SimulationEngine,
)
from repro.topology import figure1_topology
from repro.topology.fixtures import AS_D, AS_E


def run_manager(*, seed=0, until=30.0, term=12.0, fail_link=False, **overrides):
    engine = SimulationEngine(seed=seed)
    network = DynamicNetwork(figure1_topology())
    if fail_link:
        network.fail_link(AS_D, AS_E)
    manager = AgreementLifecycleManager(
        network=network,
        pairs=((AS_D, AS_E),),
        term_duration=term,
        metering_interval=1.0,
        retry_delay=5.0,
        seed=seed,
        **overrides,
    )
    engine.add_process(manager)
    trace = engine.run(until=until)
    return engine, manager, trace


class TestLifecycle:
    def test_full_cycle_negotiate_activate_meter_bill_expire(self):
        _, manager, trace = run_manager(until=13.0, term=12.0)
        assert [r.kind for r in trace.records[:2]] == [
            "bosco_configured",
            "negotiation",
        ]
        assert len(trace.of_kind("agreement_activated")) >= 1
        billing = trace.of_kind("billing")
        assert len(billing) == 1
        # One metering sample per interval over the whole term.
        assert billing[0].data["samples"] == 12
        assert billing[0].data["billed_volume_x"] > 0.0
        assert len(trace.of_kind("agreement_expired")) == 1

    def test_expiry_triggers_renegotiation(self):
        _, manager, trace = run_manager(until=30.0, term=12.0)
        negotiations = trace.of_kind("negotiation")
        assert len(negotiations) >= 2
        assert manager.billed_terms >= 2
        # The renegotiated term starts right at the previous expiry.
        activations = trace.of_kind("agreement_activated")
        expiries = trace.of_kind("agreement_expired")
        assert activations[1].time == expiries[0].time

    def test_billing_reports_both_parties(self):
        _, _, trace = run_manager(until=13.0, term=12.0)
        record = trace.of_kind("billing")[0]
        assert f"revenue_{AS_D}" in record.data
        assert f"revenue_{AS_E}" in record.data
        assert f"utility_{AS_D}" in record.data
        assert f"utility_{AS_E}" in record.data
        revenue = trace.revenue_by_as()
        assert set(revenue) == {AS_D, AS_E}

    def test_down_peering_link_skips_negotiation(self):
        _, manager, trace = run_manager(until=4.0, fail_link=True)
        assert len(trace.of_kind("negotiation_skipped")) == 1
        assert manager.concluded == 0
        assert not trace.of_kind("agreement_activated")

    def test_retry_after_skip(self):
        _, manager, trace = run_manager(until=11.0, fail_link=True)
        # retry_delay=5.0: skipped at t=0, 5, 10.
        assert len(trace.of_kind("negotiation_skipped")) == 3

    def test_metering_pauses_while_the_link_is_down(self):
        engine, manager, trace = run_manager(until=5.0, term=12.0)
        active = manager.active_agreements()[0]
        before = sum(active.samples[AS_D])
        assert before > 0.0
        manager.network.fail_link(AS_D, AS_E, time=engine.now)
        engine.run(until=10.0)
        # All samples taken while the link was down are zero.
        assert sum(active.samples[AS_D]) == pytest.approx(before)

    def test_same_seed_reproduces_the_trace(self):
        _, _, trace_a = run_manager(seed=11, until=30.0)
        _, _, trace_b = run_manager(seed=11, until=30.0)
        assert trace_a.to_jsonl() == trace_b.to_jsonl()

    def test_different_seed_changes_the_trace(self):
        _, _, trace_a = run_manager(seed=11, until=30.0)
        _, _, trace_b = run_manager(seed=12, until=30.0)
        assert trace_a.to_jsonl() != trace_b.to_jsonl()


class TestBatchedNegotiationEpochs:
    """Pairs due at the same virtual instant share one engine call."""

    def build_started_manager(self, pairs=((AS_D, AS_E),), until=0.0):
        engine = SimulationEngine(seed=0)
        network = DynamicNetwork(figure1_topology())
        manager = AgreementLifecycleManager(
            network=network,
            pairs=pairs,
            term_duration=12.0,
            metering_interval=1.0,
            retry_delay=5.0,
            seed=0,
        )
        engine.add_process(manager)
        engine.run(until=until)
        return engine, manager

    def test_same_due_time_requests_share_one_flush_event(self):
        from repro.topology.fixtures import AS_C, AS_F

        engine, manager = self.build_started_manager(until=0.0)
        # Two further peering pairs with downed links, due at the same
        # instant: one bucket, one flush, two skip records in request
        # order.
        manager.network.fail_link(AS_C, AS_D, time=engine.now)
        manager.network.fail_link(AS_E, AS_F, time=engine.now)
        manager._request_negotiation((AS_C, AS_D), 2.0)
        manager._request_negotiation((AS_E, AS_F), 2.0)
        assert list(manager._due[engine.now + 2.0]) == [(AS_C, AS_D), (AS_E, AS_F)]
        processed_before = engine.events_processed
        trace = engine.run(until=3.0)
        skipped = [r for r in trace.records if r.kind == "negotiation_skipped"]
        assert [r.data["pair"] for r in skipped] == [[AS_C, AS_D], [AS_E, AS_F]]
        assert skipped[0].time == skipped[1].time == 2.0
        assert engine.events_processed > processed_before
        # The shared bucket is drained by its single flush event.
        assert not manager._due.get(2.0)

    def test_retry_after_flush_opens_a_fresh_bucket(self):
        from repro.topology.fixtures import AS_C

        engine, manager = self.build_started_manager(until=0.0)
        manager.network.fail_link(AS_C, AS_D, time=engine.now)
        manager._request_negotiation((AS_C, AS_D), 2.0)
        trace = engine.run(until=8.0)
        # The skipped pair retries retry_delay after the flush, through
        # a new bucket at t=7.
        skipped = [r for r in trace.records if r.kind == "negotiation_skipped"]
        assert [r.time for r in skipped] == [2.0, 7.0]

    def test_batched_trace_is_reproducible(self):
        _, _, trace_a = run_manager(seed=3, until=40.0)
        _, _, trace_b = run_manager(seed=3, until=40.0)
        assert trace_a.to_jsonl() == trace_b.to_jsonl()

    def test_retry_joining_a_pending_bucket_keeps_request_order(self):
        """Regression: the delicate same-instant interleaving case.

        Pair (C, D) has a failed link and retries every 24h; pair
        (E, F) is staggered to its first negotiation at t=24.  The
        retry request (made at t=0, due t=24) joins (E, F)'s
        still-pending initial bucket, so both are decided by one flush
        — and the records must appear in request order ((E, F) was
        requested first, at start), with (C, D)'s expiry-driven
        rhythm undisturbed.  Verified byte-identical against the
        pre-refactor per-pair event formulation at the time of the
        refactor.
        """
        from repro.topology.fixtures import AS_C, AS_F

        engine = SimulationEngine(seed=0)
        network = DynamicNetwork(figure1_topology())
        network.fail_link(AS_C, AS_D)
        manager = AgreementLifecycleManager(
            network=network,
            pairs=((AS_C, AS_D), (AS_E, AS_F)),
            term_duration=48.0,
            metering_interval=24.0,
            retry_delay=24.0,
            seed=0,
        )
        engine.add_process(manager)
        trace = engine.run(until=100.0)
        at_24 = [
            (r.kind, r.data.get("pair"))
            for r in trace.records
            if r.time == 24.0 and r.kind.startswith("negotiation")
        ]
        assert at_24 == [
            ("negotiation", [AS_E, AS_F]),
            ("negotiation_skipped", [AS_C, AS_D]),
        ]
        # The skipping pair keeps retrying on its 24h grid.
        skipped_times = [r.time for r in trace.of_kind("negotiation_skipped")]
        assert skipped_times == [0.0, 24.0, 48.0, 72.0, 96.0]
