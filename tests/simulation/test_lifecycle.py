"""Tests for the agreement lifecycle process."""

import pytest

from repro.simulation import (
    AgreementLifecycleManager,
    DynamicNetwork,
    SimulationEngine,
)
from repro.topology import figure1_topology
from repro.topology.fixtures import AS_D, AS_E


def run_manager(*, seed=0, until=30.0, term=12.0, fail_link=False, **overrides):
    engine = SimulationEngine(seed=seed)
    network = DynamicNetwork(figure1_topology())
    if fail_link:
        network.fail_link(AS_D, AS_E)
    manager = AgreementLifecycleManager(
        network=network,
        pairs=((AS_D, AS_E),),
        term_duration=term,
        metering_interval=1.0,
        retry_delay=5.0,
        seed=seed,
        **overrides,
    )
    engine.add_process(manager)
    trace = engine.run(until=until)
    return engine, manager, trace


class TestLifecycle:
    def test_full_cycle_negotiate_activate_meter_bill_expire(self):
        _, manager, trace = run_manager(until=13.0, term=12.0)
        assert [r.kind for r in trace.records[:2]] == [
            "bosco_configured",
            "negotiation",
        ]
        assert len(trace.of_kind("agreement_activated")) >= 1
        billing = trace.of_kind("billing")
        assert len(billing) == 1
        # One metering sample per interval over the whole term.
        assert billing[0].data["samples"] == 12
        assert billing[0].data["billed_volume_x"] > 0.0
        assert len(trace.of_kind("agreement_expired")) == 1

    def test_expiry_triggers_renegotiation(self):
        _, manager, trace = run_manager(until=30.0, term=12.0)
        negotiations = trace.of_kind("negotiation")
        assert len(negotiations) >= 2
        assert manager.billed_terms >= 2
        # The renegotiated term starts right at the previous expiry.
        activations = trace.of_kind("agreement_activated")
        expiries = trace.of_kind("agreement_expired")
        assert activations[1].time == expiries[0].time

    def test_billing_reports_both_parties(self):
        _, _, trace = run_manager(until=13.0, term=12.0)
        record = trace.of_kind("billing")[0]
        assert f"revenue_{AS_D}" in record.data
        assert f"revenue_{AS_E}" in record.data
        assert f"utility_{AS_D}" in record.data
        assert f"utility_{AS_E}" in record.data
        revenue = trace.revenue_by_as()
        assert set(revenue) == {AS_D, AS_E}

    def test_down_peering_link_skips_negotiation(self):
        _, manager, trace = run_manager(until=4.0, fail_link=True)
        assert len(trace.of_kind("negotiation_skipped")) == 1
        assert manager.concluded == 0
        assert not trace.of_kind("agreement_activated")

    def test_retry_after_skip(self):
        _, manager, trace = run_manager(until=11.0, fail_link=True)
        # retry_delay=5.0: skipped at t=0, 5, 10.
        assert len(trace.of_kind("negotiation_skipped")) == 3

    def test_metering_pauses_while_the_link_is_down(self):
        engine, manager, trace = run_manager(until=5.0, term=12.0)
        active = manager.active_agreements()[0]
        before = sum(active.samples[AS_D])
        assert before > 0.0
        manager.network.fail_link(AS_D, AS_E, time=engine.now)
        engine.run(until=10.0)
        # All samples taken while the link was down are zero.
        assert sum(active.samples[AS_D]) == pytest.approx(before)

    def test_same_seed_reproduces_the_trace(self):
        _, _, trace_a = run_manager(seed=11, until=30.0)
        _, _, trace_b = run_manager(seed=11, until=30.0)
        assert trace_a.to_jsonl() == trace_b.to_jsonl()

    def test_different_seed_changes_the_trace(self):
        _, _, trace_a = run_manager(seed=11, until=30.0)
        _, _, trace_b = run_manager(seed=12, until=30.0)
        assert trace_a.to_jsonl() != trace_b.to_jsonl()
