"""Tests for the simulation engine's scheduling and run loop."""

import pytest

from repro.simulation import Process, SimulationEngine, SimulationError


class RecordingProcess(Process):
    """Schedules one event at its start time."""

    def __init__(self, at: float, log: list) -> None:
        self.at = at
        self.log = log

    def start(self, engine: SimulationEngine) -> None:
        engine.schedule_at(self.at, lambda: self.log.append(engine.now))


class TestScheduling:
    def test_relative_and_absolute_scheduling(self):
        engine = SimulationEngine()
        times = []
        engine.schedule(2.0, lambda: times.append(engine.now))
        engine.schedule_at(1.0, lambda: times.append(engine.now))
        engine.run(until=5.0)
        assert times == [1.0, 2.0]

    def test_scheduling_into_the_past_raises(self):
        engine = SimulationEngine()
        engine.run(until=2.0)
        with pytest.raises(SimulationError):
            engine.schedule_at(1.0, lambda: None)
        with pytest.raises(SimulationError):
            engine.schedule(-0.5, lambda: None)

    def test_periodic_events_repeat_until_horizon(self):
        engine = SimulationEngine()
        times = []
        engine.schedule_every(1.0, lambda: times.append(engine.now), start=0.0)
        engine.run(until=3.5)
        assert times == [0.0, 1.0, 2.0, 3.0]

    def test_periodic_interval_must_be_positive(self):
        engine = SimulationEngine()
        with pytest.raises(SimulationError):
            engine.schedule_every(0.0, lambda: None)

    def test_cancel_scheduled_event(self):
        engine = SimulationEngine()
        fired = []
        event = engine.schedule(1.0, lambda: fired.append("cancelled"))
        engine.schedule(2.0, lambda: fired.append("kept"))
        engine.cancel(event)
        engine.run(until=5.0)
        assert fired == ["kept"]


class TestRunLoop:
    def test_events_at_the_horizon_still_fire(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule_at(3.0, lambda: fired.append("edge"))
        engine.run(until=3.0)
        assert fired == ["edge"]

    def test_events_beyond_the_horizon_stay_queued(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule_at(4.0, lambda: fired.append("late"))
        engine.run(until=3.0)
        assert fired == []
        assert engine.now == 3.0
        engine.run(until=5.0)
        assert fired == ["late"]

    def test_horizon_before_now_raises(self):
        engine = SimulationEngine()
        engine.run(until=2.0)
        with pytest.raises(SimulationError):
            engine.run(until=1.0)

    def test_stop_halts_after_current_event(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule_at(1.0, lambda: (fired.append("a"), engine.stop()))
        engine.schedule_at(2.0, lambda: fired.append("b"))
        engine.run(until=10.0)
        assert fired == ["a"]

    def test_events_processed_counter(self):
        engine = SimulationEngine()
        for index in range(5):
            engine.schedule_at(float(index), lambda: None)
        engine.run(until=10.0)
        assert engine.events_processed == 5


class TestProcesses:
    def test_processes_start_when_the_run_starts(self):
        engine = SimulationEngine()
        log = []
        engine.add_process(RecordingProcess(1.0, log))
        engine.add_process(RecordingProcess(2.0, log))
        engine.run(until=5.0)
        assert log == [1.0, 2.0]

    def test_late_added_process_starts_immediately(self):
        engine = SimulationEngine()
        log = []
        engine.run(until=1.0)
        engine.add_process(RecordingProcess(2.0, log))
        engine.run(until=5.0)
        assert log == [2.0]

    def test_trace_is_shared_and_returned(self):
        engine = SimulationEngine()
        engine.schedule_at(1.0, lambda: engine.trace.record(engine.now, "tick"))
        trace = engine.run(until=2.0)
        assert trace is engine.trace
        assert trace.kinds() == {"tick": 1}
