"""Tests for failure schedules and the failure injector."""

import pytest

from repro.simulation import (
    LINK_DOWN,
    LINK_UP,
    DeterministicFailureSchedule,
    DynamicNetwork,
    FailureInjector,
    LinkEvent,
    SimulationEngine,
    SimulationError,
    StochasticFailureModel,
)
from repro.topology import figure1_topology
from repro.topology.fixtures import AS_C, AS_D, AS_E, AS_F


class TestLinkEvent:
    def test_rejects_unknown_kind(self):
        with pytest.raises(SimulationError):
            LinkEvent(time=1.0, kind="explode", left=1, right=2)

    def test_rejects_negative_time(self):
        with pytest.raises(SimulationError):
            LinkEvent(time=-1.0, kind=LINK_DOWN, left=1, right=2)

    def test_link_endpoints_are_sorted(self):
        event = LinkEvent(time=0.0, kind=LINK_DOWN, left=5, right=3)
        assert event.link == (3, 5)


class TestDeterministicSchedule:
    def test_events_sorted_and_horizon_filtered(self):
        schedule = DeterministicFailureSchedule.of(
            (5.0, LINK_UP, 1, 2),
            (2.0, LINK_DOWN, 1, 2),
            (9.0, LINK_DOWN, 3, 4),
        )
        events = schedule.link_events(horizon=6.0)
        assert [(e.time, e.kind) for e in events] == [(2.0, "down"), (5.0, "up")]


class TestStochasticModel:
    def test_same_seed_same_events(self):
        links = ((1, 2), (3, 4))
        model_a = StochasticFailureModel(
            links=links, mean_time_to_failure=10.0, mean_time_to_repair=2.0, seed=5
        )
        model_b = StochasticFailureModel(
            links=links, mean_time_to_failure=10.0, mean_time_to_repair=2.0, seed=5
        )
        assert model_a.link_events(100.0) == model_b.link_events(100.0)

    def test_different_seeds_differ(self):
        links = ((1, 2), (3, 4))
        model_a = StochasticFailureModel(
            links=links, mean_time_to_failure=10.0, mean_time_to_repair=2.0, seed=5
        )
        model_b = StochasticFailureModel(
            links=links, mean_time_to_failure=10.0, mean_time_to_repair=2.0, seed=6
        )
        assert model_a.link_events(100.0) != model_b.link_events(100.0)

    def test_link_order_does_not_matter(self):
        model_a = StochasticFailureModel(
            links=((1, 2), (3, 4)),
            mean_time_to_failure=10.0,
            mean_time_to_repair=2.0,
            seed=5,
        )
        model_b = StochasticFailureModel(
            links=((4, 3), (2, 1)),
            mean_time_to_failure=10.0,
            mean_time_to_repair=2.0,
            seed=5,
        )
        assert model_a.link_events(100.0) == model_b.link_events(100.0)

    def test_each_link_alternates_down_up(self):
        model = StochasticFailureModel(
            links=((1, 2),), mean_time_to_failure=5.0, mean_time_to_repair=1.0, seed=0
        )
        kinds = [event.kind for event in model.link_events(200.0)]
        assert kinds, "expected some churn over the horizon"
        expected = [LINK_DOWN if i % 2 == 0 else LINK_UP for i in range(len(kinds))]
        assert kinds == expected

    def test_invalid_means_rejected(self):
        with pytest.raises(SimulationError):
            StochasticFailureModel(
                links=((1, 2),), mean_time_to_failure=0.0, mean_time_to_repair=1.0
            )


class TestFailureInjector:
    def test_applies_schedule_at_the_right_times(self):
        engine = SimulationEngine()
        network = DynamicNetwork(figure1_topology())
        schedule = DeterministicFailureSchedule.of(
            (1.0, LINK_DOWN, AS_D, AS_E),
            (2.0, LINK_DOWN, AS_C, AS_D),
            (3.0, LINK_UP, AS_D, AS_E),
        )
        injector = FailureInjector(network=network, schedule=schedule, horizon=10.0)
        engine.add_process(injector)

        engine.run(until=1.5)
        assert not network.is_link_up(AS_D, AS_E)
        assert network.is_link_up(AS_C, AS_D)

        engine.run(until=10.0)
        assert network.is_link_up(AS_D, AS_E)
        assert not network.is_link_up(AS_C, AS_D)
        assert injector.applied_events == 3
        assert len(engine.trace.of_kind("link_event")) == 3

    def test_redundant_events_do_not_trace(self):
        engine = SimulationEngine()
        network = DynamicNetwork(figure1_topology())
        schedule = DeterministicFailureSchedule.of(
            (1.0, LINK_DOWN, AS_E, AS_F),
            (2.0, LINK_DOWN, AS_E, AS_F),
        )
        engine.add_process(
            FailureInjector(network=network, schedule=schedule, horizon=10.0)
        )
        engine.run(until=10.0)
        assert len(engine.trace.of_kind("link_event")) == 1
