"""Tests for time-varying demand and flash crowds."""

import pytest

from repro.simulation import FlashCrowd, SimulationError, TimeVaryingDemand


class TestShape:
    def test_peak_hour_maximizes_the_diurnal_shape(self):
        demand = TimeVaryingDemand(
            mean_volume=10.0, peak_hour=20.0, burstiness=0.0, weekend_dip=0.0
        )
        peak = demand.shape_at(20.0)
        trough = demand.shape_at(8.0)
        assert peak > trough
        assert peak == pytest.approx(1.0 + demand.diurnal_amplitude)

    def test_weekend_dip_applies_on_days_five_and_six(self):
        demand = TimeVaryingDemand(mean_volume=10.0, burstiness=0.0)
        weekday = demand.shape_at(24.0 * 2 + 12.0)
        weekend = demand.shape_at(24.0 * 5 + 12.0)
        assert weekend == pytest.approx(weekday * (1.0 - demand.weekend_dip))

    def test_long_run_mean_matches_mean_volume(self):
        # The shape is normalized over a week, so hourly sampling of a
        # full week recovers the configured mean exactly (no burstiness).
        demand = TimeVaryingDemand(mean_volume=10.0, burstiness=0.0)
        samples = [demand.sample(float(hour)) for hour in range(7 * 24)]
        assert sum(samples) / len(samples) == pytest.approx(10.0)

    def test_zero_mean_volume_is_always_zero(self):
        demand = TimeVaryingDemand(mean_volume=0.0)
        assert demand.sample(13.0) == 0.0


class TestSampling:
    def test_same_seed_same_series(self):
        times = [float(t) for t in range(48)]
        series_a = [TimeVaryingDemand(mean_volume=5.0, seed=3).sample(t) for t in times]
        demand_b = TimeVaryingDemand(mean_volume=5.0, seed=3)
        series_b = [demand_b.sample(t) for t in times]
        assert series_a != [0.0] * len(times)
        # Rebuilding the model resets the generator: identical series.
        demand_a = TimeVaryingDemand(mean_volume=5.0, seed=3)
        assert [demand_a.sample(t) for t in times] == series_b

    def test_different_seeds_differ(self):
        a = TimeVaryingDemand(mean_volume=5.0, seed=3).sample(12.0)
        b = TimeVaryingDemand(mean_volume=5.0, seed=4).sample(12.0)
        assert a != b

    def test_no_burstiness_is_deterministic(self):
        demand = TimeVaryingDemand(mean_volume=5.0, burstiness=0.0)
        assert demand.sample(12.0) == demand.sample(12.0)

    def test_validation(self):
        with pytest.raises(SimulationError):
            TimeVaryingDemand(mean_volume=-1.0)
        with pytest.raises(SimulationError):
            TimeVaryingDemand(mean_volume=1.0, diurnal_amplitude=2.0)
        with pytest.raises(SimulationError):
            TimeVaryingDemand(mean_volume=1.0, burstiness=-0.1)


class TestFlashCrowd:
    def test_factor_applies_inside_the_window_only(self):
        crowd = FlashCrowd(start=10.0, duration=5.0, multiplier=4.0)
        assert crowd.factor_at(9.9) == 1.0
        assert crowd.factor_at(10.0) == 4.0
        assert crowd.factor_at(14.9) == 4.0
        assert crowd.factor_at(15.0) == 1.0

    def test_demand_is_multiplied_during_the_crowd(self):
        calm = TimeVaryingDemand(mean_volume=10.0, burstiness=0.0)
        spiky = TimeVaryingDemand(
            mean_volume=10.0,
            burstiness=0.0,
            flash_crowds=(FlashCrowd(start=0.0, duration=100.0, multiplier=3.0),),
        )
        assert spiky.sample(12.0) == pytest.approx(3.0 * calm.sample(12.0))

    def test_validation(self):
        with pytest.raises(SimulationError):
            FlashCrowd(start=0.0, duration=0.0, multiplier=2.0)
        with pytest.raises(SimulationError):
            FlashCrowd(start=0.0, duration=1.0, multiplier=-1.0)
