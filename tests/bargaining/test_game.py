"""Unit tests for the bargaining game and its equilibria."""

import math

import numpy as np
import pytest

from repro.bargaining.choices import ChoiceSet, random_choice_set
from repro.bargaining.distributions import UniformUtilityDistribution
from repro.bargaining.game import (
    BargainingGame,
    StrategyProfile,
    choice_probabilities,
    response_lines,
)
from repro.bargaining.strategy import ThresholdStrategy, truthful_like_strategy


@pytest.fixture()
def symmetric_game():
    distribution = UniformUtilityDistribution(-1.0, 1.0)
    rng = np.random.default_rng(3)
    choices_x = random_choice_set(distribution, 15, rng)
    choices_y = random_choice_set(distribution, 15, rng)
    return BargainingGame(
        distribution_x=distribution,
        distribution_y=distribution,
        choices_x=choices_x,
        choices_y=choices_y,
    )


class TestChoiceProbabilities:
    def test_probabilities_sum_to_one(self):
        distribution = UniformUtilityDistribution(-1.0, 1.0)
        choices = ChoiceSet.from_values([-0.5, 0.0, 0.5])
        strategy = truthful_like_strategy(choices)
        probabilities = choice_probabilities(strategy, distribution)
        assert sum(probabilities) == pytest.approx(1.0)

    def test_probabilities_match_interval_masses(self):
        distribution = UniformUtilityDistribution(-1.0, 1.0)
        choices = ChoiceSet.from_values([-0.5, 0.0, 0.5])
        strategy = truthful_like_strategy(choices)
        probabilities = choice_probabilities(strategy, distribution)
        # Intervals: (-inf,-0.5), [-0.5,0), [0,0.5), [0.5,inf) on [-1,1].
        assert probabilities == pytest.approx([0.25, 0.25, 0.25, 0.25])


class TestResponseLines:
    def test_cancel_option_has_zero_line(self):
        distribution = UniformUtilityDistribution(-1.0, 1.0)
        choices = ChoiceSet.from_values([-0.5, 0.0, 0.5])
        strategy = truthful_like_strategy(choices)
        probabilities = choice_probabilities(strategy, distribution)
        slopes, intercepts = response_lines(choices, choices, probabilities)
        assert slopes[0] == 0.0
        assert intercepts[0] == 0.0

    def test_slopes_are_nondecreasing_in_the_claim(self):
        """Higher claims conclude against more opponent claims (Eq. 16 is a CCDF)."""
        distribution = UniformUtilityDistribution(-1.0, 1.0)
        choices = ChoiceSet.from_values([-0.6, -0.2, 0.3, 0.8])
        strategy = truthful_like_strategy(choices)
        probabilities = choice_probabilities(strategy, distribution)
        slopes, _ = response_lines(choices, choices, probabilities)
        finite_slopes = slopes[1:]
        assert finite_slopes == sorted(finite_slopes)

    def test_slope_is_conclusion_probability(self):
        distribution = UniformUtilityDistribution(-1.0, 1.0)
        choices = ChoiceSet.from_values([-0.5, 0.0, 0.5])
        strategy = truthful_like_strategy(choices)
        probabilities = choice_probabilities(strategy, distribution)
        slopes, _ = response_lines(choices, choices, probabilities)
        # Claiming 0.5 concludes against opponent claims ≥ -0.5, i.e. all
        # finite claims: probability 0.75.
        assert slopes[3] == pytest.approx(0.75)


class TestEquilibrium:
    def test_best_response_is_threshold_strategy(self, symmetric_game):
        opponent = truthful_like_strategy(symmetric_game.choices_y)
        response = symmetric_game.best_response("x", opponent)
        assert isinstance(response, ThresholdStrategy)
        assert response.thresholds[0] == -math.inf

    def test_invalid_party_name(self, symmetric_game):
        with pytest.raises(ValueError):
            symmetric_game.best_response("z", truthful_like_strategy(symmetric_game.choices_y))

    def test_dynamics_converge(self, symmetric_game):
        profile = symmetric_game.find_equilibrium()
        assert isinstance(profile, StrategyProfile)

    def test_equilibrium_is_mutual_best_response(self, symmetric_game):
        profile = symmetric_game.find_equilibrium()
        assert symmetric_game.is_equilibrium(profile)

    def test_equilibrium_uses_a_few_choices(self, symmetric_game):
        """The paper observes that only a handful of choices are played in
        equilibrium even when many are available."""
        profile = symmetric_game.find_equilibrium()
        played_x = profile.strategy_x.equilibrium_choice_indices()
        assert 1 <= len(played_x) <= 8

    def test_truthful_profile_is_generally_not_an_equilibrium(self, symmetric_game):
        profile = StrategyProfile(
            strategy_x=truthful_like_strategy(symmetric_game.choices_x),
            strategy_y=truthful_like_strategy(symmetric_game.choices_y),
        )
        assert not symmetric_game.is_equilibrium(profile)

    def test_equilibrium_reproducible(self, symmetric_game):
        first = symmetric_game.find_equilibrium()
        second = symmetric_game.find_equilibrium()
        assert first.strategy_x.approximately_equal(second.strategy_x)
        assert first.strategy_y.approximately_equal(second.strategy_y)


class TestEquilibriumErrorDiagnostics:
    def test_error_carries_iteration_and_delta_payload(self, symmetric_game):
        from repro.bargaining.game import EquilibriumError

        # max_iterations=1 cannot confirm convergence, so the search
        # exhausts every starting profile and reports its last attempt.
        with pytest.raises(EquilibriumError) as excinfo:
            symmetric_game.find_equilibrium(max_iterations=1)
        error = excinfo.value
        assert error.iterations == 1
        assert error.last_delta is not None and error.last_delta >= 0.0

    def test_payload_defaults_to_none(self):
        from repro.bargaining.game import EquilibriumError

        error = EquilibriumError("boom")
        assert error.iterations is None
        assert error.last_delta is None
        assert error.skipped_trials is None

    def test_profile_delta(self):
        from repro.bargaining.game import profile_delta

        assert profile_delta((-math.inf, 0.0), (-math.inf, 0.0)) == 0.0
        assert profile_delta((-math.inf, 0.5), (-math.inf, 0.25)) == 0.25
        assert profile_delta((-math.inf, math.inf), (-math.inf, 1.0)) == math.inf
