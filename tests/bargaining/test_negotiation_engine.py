"""Unit tests for the batched negotiation engine.

The heavyweight bit-exactness guarantees are exercised by the
property suite (``tests/property/test_negotiation_equivalence.py``);
here the engine's pieces are pinned against the per-instance reference
functions directly.
"""

import numpy as np
import pytest

from repro.bargaining.choices import ChoiceSet, random_choice_set
from repro.bargaining.distributions import (
    TruncatedNormalUtilityDistribution,
    paper_distribution_u1,
)
from repro.bargaining.engine import (
    GameBatch,
    GenericKernel,
    NegotiationEngine,
    UniformKernel,
    batched_claims,
    kernel_for,
)
from repro.bargaining.game import (
    BargainingGame,
    choice_probabilities,
    response_lines,
)
from repro.bargaining.mechanism import BoscoService
from repro.bargaining.strategy import ThresholdStrategy, truthful_like_strategy


@pytest.fixture(scope="module")
def engine():
    return NegotiationEngine()


def make_batch(size=8, num_choices=6, seed=0):
    distribution = paper_distribution_u1()
    rng = np.random.default_rng(seed)
    pairs = [
        (
            random_choice_set(distribution.marginal_x, num_choices, rng),
            random_choice_set(distribution.marginal_y, num_choices, rng),
        )
        for _ in range(size)
    ]
    return GameBatch.from_choice_sets(distribution, pairs)


class TestGameBatch:
    def test_packs_choice_values_with_cancel_column(self):
        batch = make_batch(size=3, num_choices=4)
        assert batch.choices_x.shape == (3, 5)
        assert np.all(np.isneginf(batch.choices_x[:, 0]))
        assert np.all(np.isfinite(batch.choices_x[:, 1:]))

    def test_rejects_empty_batches(self):
        with pytest.raises(ValueError, match="at least one instance"):
            GameBatch.from_choice_sets(paper_distribution_u1(), [])

    def test_rejects_mixed_cardinalities(self):
        distribution = paper_distribution_u1()
        rng = np.random.default_rng(0)
        pairs = [
            (
                random_choice_set(distribution.marginal_x, size, rng),
                random_choice_set(distribution.marginal_y, size, rng),
            )
            for size in (3, 4)
        ]
        with pytest.raises(ValueError, match="cardinality"):
            GameBatch.from_choice_sets(distribution, pairs)


class TestKernels:
    def test_uniform_distribution_gets_the_closed_form(self):
        assert isinstance(kernel_for(paper_distribution_u1().marginal_x), UniformKernel)

    def test_other_distributions_get_the_generic_fallback(self):
        normal = TruncatedNormalUtilityDistribution(0.0, 0.5, -1.0, 1.0)
        assert isinstance(kernel_for(normal), GenericKernel)

    @pytest.mark.parametrize("kernel_cls", [UniformKernel, GenericKernel])
    def test_kernels_match_the_scalar_methods_bitwise(self, kernel_cls):
        distribution = paper_distribution_u1().marginal_x
        kernel = kernel_cls(distribution)
        lows = np.array([-2.0, -1.0, -0.25, 0.0, 0.5, 0.9, 1.5])
        highs = np.array([-1.5, -0.5, -0.25, 0.75, 0.4, 2.0, 3.0])
        for low, high in zip(lows, highs):
            assert kernel.mass(np.array([low]), np.array([high]))[0] == (
                distribution.mass(low, high)
            )
            assert kernel.partial_mean(np.array([low]), np.array([high]))[0] == (
                distribution.partial_mean(low, high)
            )

    def test_generic_kernel_handles_truncated_normal(self):
        normal = TruncatedNormalUtilityDistribution(0.1, 0.4, -1.0, 1.0)
        kernel = GenericKernel(normal)
        low = np.array([-0.5, 0.0])
        high = np.array([0.5, 0.2])
        for position in range(2):
            assert kernel.mass(low, high)[position] == normal.mass(
                float(low[position]), float(high[position])
            )


class TestBatchedPrimitives:
    def test_choice_probabilities_match_reference(self, engine):
        batch = make_batch(size=5, num_choices=7, seed=3)
        kernel = kernel_for(batch.distribution.marginal_y)
        strategies = [truthful_like_strategy(s) for s in batch.sets_y]
        thresholds = np.array([s.thresholds for s in strategies])
        batched = engine.choice_probabilities(thresholds, kernel)
        for row, strategy in enumerate(strategies):
            reference = choice_probabilities(strategy, batch.distribution.marginal_y)
            assert list(batched[row]) == reference

    def test_response_lines_match_reference(self, engine):
        batch = make_batch(size=5, num_choices=7, seed=4)
        kernel = kernel_for(batch.distribution.marginal_y)
        strategies = [truthful_like_strategy(s) for s in batch.sets_y]
        thresholds = np.array([s.thresholds for s in strategies])
        probabilities = engine.choice_probabilities(thresholds, kernel)
        slopes, intercepts = engine.response_lines(
            batch.choices_x, batch.choices_y, probabilities
        )
        for row in range(len(batch)):
            reference_slopes, reference_intercepts = response_lines(
                batch.sets_x[row], batch.sets_y[row], list(probabilities[row])
            )
            assert list(slopes[row]) == reference_slopes
            assert list(intercepts[row]) == reference_intercepts

    def test_best_responses_match_reference(self, engine):
        batch = make_batch(size=6, num_choices=5, seed=5)
        kernel = kernel_for(batch.distribution.marginal_y)
        strategies = [truthful_like_strategy(s) for s in batch.sets_y]
        thresholds = np.array([s.thresholds for s in strategies])
        batched = engine.best_responses(
            batch.choices_x, batch.choices_y, thresholds, kernel
        )
        for row in range(len(batch)):
            game = BargainingGame(
                distribution_x=batch.distribution.marginal_x,
                distribution_y=batch.distribution.marginal_y,
                choices_x=batch.sets_x[row],
                choices_y=batch.sets_y[row],
            )
            reference = game.best_response("x", strategies[row])
            assert tuple(batched[row]) == reference.thresholds


class TestSolve:
    def test_solves_a_batch_and_profiles_verify(self, engine):
        batch = make_batch(size=10, num_choices=6, seed=6)
        equilibria = engine.solve(batch)
        assert equilibria.converged.any()
        for index in np.nonzero(equilibria.converged)[0][:3]:
            profile = equilibria.profile(batch, int(index))
            game = BargainingGame(
                distribution_x=batch.distribution.marginal_x,
                distribution_y=batch.distribution.marginal_y,
                choices_x=batch.sets_x[index],
                choices_y=batch.sets_y[index],
            )
            assert game.is_equilibrium(profile)

    def test_profile_of_unconverged_instance_raises(self, engine):
        batch = make_batch(size=4, num_choices=5, seed=7)
        equilibria = engine.solve(batch)
        equilibria.converged[2] = False
        with pytest.raises(ValueError, match="did not converge"):
            equilibria.profile(batch, 2)

    def test_diagnostics_are_populated(self, engine):
        batch = make_batch(size=4, num_choices=5, seed=8)
        equilibria = engine.solve(batch)
        assert (equilibria.iterations[equilibria.converged] >= 1).all()
        assert (equilibria.start_index[equilibria.converged] >= 0).all()

    def test_subbatch_rows_are_bitwise_independent(self, engine):
        batch = make_batch(size=6, num_choices=5, seed=9)
        full = engine.solve(batch)
        sub = GameBatch(
            distribution=batch.distribution,
            choices_x=batch.choices_x[2:4],
            choices_y=batch.choices_y[2:4],
            sets_x=batch.sets_x[2:4],
            sets_y=batch.sets_y[2:4],
        )
        partial = engine.solve(sub)
        assert np.array_equal(full.thresholds_x[2:4], partial.thresholds_x, equal_nan=True)
        assert np.array_equal(full.thresholds_y[2:4], partial.thresholds_y, equal_nan=True)


class TestBatchedClaims:
    def test_matches_the_scalar_strategy_calls(self):
        choices = ChoiceSet.from_values([-0.5, 0.1, 0.8])
        strategy = ThresholdStrategy(
            choices=choices, thresholds=(float("-inf"), -0.25, 0.3, 0.6)
        )
        utilities = np.array([-1.0, -0.25, 0.0, 0.3, 0.59, 0.6, 2.0])
        claims = batched_claims(strategy, utilities)
        assert list(claims) == [strategy(float(u)) for u in utilities]

    def test_negotiate_many_matches_scalar_negotiations(self):
        service = BoscoService(paper_distribution_u1(), seed=11)
        information = service.configure(8, trials=4)
        rng = np.random.default_rng(0)
        pairs = information.distribution.sample(rng, size=50)
        outcomes = BoscoService.negotiate_many(
            information, list(pairs[:, 0]), list(pairs[:, 1])
        )
        for (utility_x, utility_y), outcome in zip(pairs, outcomes):
            assert outcome == BoscoService.negotiate(
                information, float(utility_x), float(utility_y)
            )

    def test_negotiate_many_rejects_mismatched_lengths(self):
        service = BoscoService(paper_distribution_u1(), seed=11)
        information = service.configure(5, trials=2)
        with pytest.raises(ValueError, match="one utility per party"):
            BoscoService.negotiate_many(information, [0.1], [0.2, 0.3])

    def test_negotiate_many_of_nothing_is_empty(self):
        service = BoscoService(paper_distribution_u1(), seed=11)
        information = service.configure(5, trials=2)
        assert BoscoService.negotiate_many(information, [], []) == []
