"""Unit tests for BOSCO choice sets."""

import math

import numpy as np
import pytest

from repro.bargaining.choices import CANCEL, ChoiceSet, quantile_choice_set, random_choice_set
from repro.bargaining.distributions import UniformUtilityDistribution


class TestChoiceSet:
    def test_from_values_adds_cancel_option(self):
        choices = ChoiceSet.from_values([0.5, -0.2, 0.9])
        assert choices[0] == CANCEL
        assert choices.finite_values == (-0.2, 0.5, 0.9)

    def test_cardinality_counts_cancel_option(self):
        choices = ChoiceSet.from_values([0.1, 0.2])
        assert choices.cardinality == 3
        assert len(choices) == 3

    def test_values_must_start_with_cancel(self):
        with pytest.raises(ValueError):
            ChoiceSet(values=(0.0, 1.0))

    def test_values_must_be_increasing(self):
        with pytest.raises(ValueError):
            ChoiceSet(values=(CANCEL, 1.0, 0.5))

    def test_duplicate_values_collapsed_by_from_values(self):
        choices = ChoiceSet.from_values([0.5, 0.5, 0.7])
        assert choices.finite_values == (0.5, 0.7)

    def test_infinite_finite_values_rejected(self):
        with pytest.raises(ValueError):
            ChoiceSet(values=(CANCEL, 0.0, math.inf))
        with pytest.raises(ValueError):
            ChoiceSet.from_values([math.inf])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ChoiceSet(values=())

    def test_index_of(self):
        choices = ChoiceSet.from_values([0.1, 0.2])
        assert choices.index_of(0.2) == 2
        assert choices.index_of(CANCEL) == 0


class TestRandomChoiceSet:
    def test_requested_size(self):
        dist = UniformUtilityDistribution(-1.0, 1.0)
        choices = random_choice_set(dist, 20, np.random.default_rng(0))
        assert len(choices.finite_values) == 20

    def test_choices_within_support(self):
        dist = UniformUtilityDistribution(-0.5, 1.0)
        choices = random_choice_set(dist, 30, np.random.default_rng(1))
        assert min(choices.finite_values) >= -0.5
        assert max(choices.finite_values) <= 1.0

    def test_size_must_be_positive(self):
        dist = UniformUtilityDistribution(0.0, 1.0)
        with pytest.raises(ValueError):
            random_choice_set(dist, 0, np.random.default_rng(0))

    def test_deterministic_for_fixed_rng_seed(self):
        dist = UniformUtilityDistribution(-1.0, 1.0)
        a = random_choice_set(dist, 10, np.random.default_rng(7))
        b = random_choice_set(dist, 10, np.random.default_rng(7))
        assert a.values == b.values


class TestQuantileChoiceSet:
    def test_quantiles_of_uniform_are_evenly_spaced(self):
        dist = UniformUtilityDistribution(0.0, 1.0)
        choices = quantile_choice_set(dist, 3)
        assert choices.finite_values[0] == pytest.approx(0.25, abs=1e-6)
        assert choices.finite_values[1] == pytest.approx(0.5, abs=1e-6)
        assert choices.finite_values[2] == pytest.approx(0.75, abs=1e-6)

    def test_size_must_be_positive(self):
        with pytest.raises(ValueError):
            quantile_choice_set(UniformUtilityDistribution(0.0, 1.0), 0)

    def test_quantiles_are_sorted(self):
        dist = UniformUtilityDistribution(-2.0, 3.0)
        choices = quantile_choice_set(dist, 9)
        assert list(choices.finite_values) == sorted(choices.finite_values)
