"""Unit tests for the utility distributions of the BOSCO mechanism."""

import numpy as np
import pytest

from repro.bargaining.distributions import (
    JointUtilityDistribution,
    TruncatedNormalUtilityDistribution,
    UniformUtilityDistribution,
    paper_distribution_u1,
    paper_distribution_u2,
)


class TestUniformDistribution:
    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            UniformUtilityDistribution(1.0, 1.0)

    def test_pdf(self):
        dist = UniformUtilityDistribution(-1.0, 1.0)
        assert dist.pdf(0.0) == pytest.approx(0.5)
        assert dist.pdf(2.0) == 0.0

    def test_mass_full_support(self):
        dist = UniformUtilityDistribution(-1.0, 1.0)
        assert dist.mass(-1.0, 1.0) == pytest.approx(1.0)

    def test_mass_partial_interval(self):
        dist = UniformUtilityDistribution(0.0, 4.0)
        assert dist.mass(1.0, 2.0) == pytest.approx(0.25)

    def test_mass_outside_support(self):
        dist = UniformUtilityDistribution(0.0, 1.0)
        assert dist.mass(2.0, 3.0) == 0.0
        assert dist.mass(3.0, 2.0) == 0.0

    def test_partial_mean(self):
        dist = UniformUtilityDistribution(0.0, 2.0)
        # ∫_0^2 u * 0.5 du = 1.0
        assert dist.partial_mean(0.0, 2.0) == pytest.approx(1.0)
        # ∫_0^1 u * 0.5 du = 0.25
        assert dist.partial_mean(0.0, 1.0) == pytest.approx(0.25)

    def test_mean(self):
        assert UniformUtilityDistribution(-1.0, 3.0).mean == pytest.approx(1.0)

    def test_samples_stay_in_support(self):
        dist = UniformUtilityDistribution(-0.5, 1.0)
        rng = np.random.default_rng(0)
        samples = dist.sample(rng, size=500)
        assert samples.min() >= -0.5
        assert samples.max() <= 1.0


class TestTruncatedNormal:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TruncatedNormalUtilityDistribution(0.0, -1.0, -1.0, 1.0)
        with pytest.raises(ValueError):
            TruncatedNormalUtilityDistribution(0.0, 1.0, 1.0, 1.0)

    def test_mass_is_normalized(self):
        dist = TruncatedNormalUtilityDistribution(0.0, 1.0, -1.0, 1.0)
        assert dist.mass(-1.0, 1.0) == pytest.approx(1.0)

    def test_pdf_outside_support_is_zero(self):
        dist = TruncatedNormalUtilityDistribution(0.0, 1.0, -1.0, 1.0)
        assert dist.pdf(2.0) == 0.0
        assert dist.pdf(0.0) > 0.0

    def test_partial_mean_of_symmetric_distribution_is_zero(self):
        dist = TruncatedNormalUtilityDistribution(0.0, 1.0, -1.0, 1.0)
        assert dist.partial_mean(-1.0, 1.0) == pytest.approx(0.0, abs=1e-6)

    def test_samples_stay_in_support(self):
        dist = TruncatedNormalUtilityDistribution(0.5, 0.5, 0.0, 1.0)
        rng = np.random.default_rng(1)
        samples = dist.sample(rng, size=200)
        assert samples.min() >= 0.0
        assert samples.max() <= 1.0
        assert len(samples) == 200


class TestJointDistributions:
    def test_paper_u1_support(self):
        joint = paper_distribution_u1()
        assert joint.marginal_x.lower == -1.0
        assert joint.marginal_x.upper == 1.0
        assert joint.marginal_y.lower == -1.0

    def test_paper_u2_support(self):
        joint = paper_distribution_u2()
        assert joint.marginal_x.lower == -0.5
        assert joint.marginal_y.upper == 1.0

    def test_joint_sampling_shape(self):
        joint = JointUtilityDistribution(
            UniformUtilityDistribution(0.0, 1.0), UniformUtilityDistribution(-1.0, 0.0)
        )
        rng = np.random.default_rng(2)
        pairs = joint.sample(rng, size=10)
        assert pairs.shape == (10, 2)
        assert (pairs[:, 0] >= 0.0).all()
        assert (pairs[:, 1] <= 0.0).all()
