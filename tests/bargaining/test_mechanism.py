"""Unit tests for the BOSCO service and its mechanism properties (§V-D)."""

import numpy as np
import pytest

from repro.bargaining.distributions import paper_distribution_u1, paper_distribution_u2
from repro.bargaining.mechanism import BoscoService


@pytest.fixture(scope="module")
def configured_mechanism():
    service = BoscoService(paper_distribution_u1(), seed=4)
    information = service.configure(20, trials=8)
    return service, information


class TestConfiguration:
    def test_configure_returns_best_trial(self, configured_mechanism):
        _, information = configured_mechanism
        assert 0.0 <= information.price_of_dishonesty <= 1.0
        assert information.expected_nash_product > 0.0

    def test_published_profile_verifies_as_equilibrium(self, configured_mechanism):
        _, information = configured_mechanism
        assert information.verify_equilibrium()

    def test_choice_sets_have_requested_cardinality(self, configured_mechanism):
        _, information = configured_mechanism
        assert len(information.choices_x.finite_values) == 20
        assert len(information.choices_y.finite_values) == 20

    def test_invalid_trials_rejected(self):
        service = BoscoService(paper_distribution_u1(), seed=0)
        with pytest.raises(ValueError):
            service.configure(10, trials=0)

    def test_invalid_construction_mode_rejected(self):
        with pytest.raises(ValueError):
            BoscoService(paper_distribution_u1(), choice_construction="magic")

    def test_quantile_construction_also_works(self):
        service = BoscoService(
            paper_distribution_u2(), seed=0, choice_construction="quantile"
        )
        information = service.configure(15, trials=1)
        assert 0.0 <= information.price_of_dishonesty <= 1.0

    def test_pod_statistics(self):
        service = BoscoService(paper_distribution_u1(), seed=5)
        stats = service.pod_statistics(15, trials=10)
        assert stats["min"] <= stats["mean"] <= stats["max"]
        assert stats["trials"] == 10
        assert stats["mean_equilibrium_choices"] >= 1.0


class TestMechanismProperties:
    """The §V-D theorems, checked on sampled true utilities."""

    def _sample_outcomes(self, information, count=400, seed=9):
        rng = np.random.default_rng(seed)
        pairs = information.distribution.sample(rng, size=count)
        return [
            BoscoService.negotiate(information, float(ux), float(uy)) for ux, uy in pairs
        ]

    def test_budget_balance(self, configured_mechanism):
        """What one party pays, the other receives — no money is created or lost."""
        _, information = configured_mechanism
        for outcome in self._sample_outcomes(information):
            if outcome.concluded:
                total = outcome.post_utility_x + outcome.post_utility_y
                assert total == pytest.approx(
                    outcome.true_utility_x + outcome.true_utility_y
                )

    def test_strong_individual_rationality(self, configured_mechanism):
        """Theorem 1: after-negotiation utility is non-negative in every outcome."""
        _, information = configured_mechanism
        for outcome in self._sample_outcomes(information):
            assert outcome.post_utility_x >= -1e-9
            assert outcome.post_utility_y >= -1e-9

    def test_soundness(self, configured_mechanism):
        """Theorem 2: a concluded agreement always has non-negative true surplus."""
        _, information = configured_mechanism
        for outcome in self._sample_outcomes(information):
            if outcome.concluded:
                assert outcome.true_utility_x + outcome.true_utility_y >= -1e-9

    def test_pod_in_unit_interval(self, configured_mechanism):
        """Theorem 3."""
        _, information = configured_mechanism
        assert 0.0 <= information.price_of_dishonesty <= 1.0

    def test_privacy_no_singleton_intervals(self, configured_mechanism):
        """Theorem 4: no choice maps back to a single possible utility."""
        _, information = configured_mechanism
        for strategy in (
            information.equilibrium.strategy_x,
            information.equilibrium.strategy_y,
        ):
            for index in strategy.equilibrium_choice_indices():
                low, high = strategy.interval(index)
                assert high > low

    def test_negotiation_transfer_is_half_the_claim_difference(self, configured_mechanism):
        _, information = configured_mechanism
        outcome = BoscoService.negotiate(information, 0.8, 0.6)
        if outcome.concluded:
            assert outcome.transfer_x_to_y == pytest.approx(
                (outcome.claim_x - outcome.claim_y) / 2.0
            )

    def test_hopeless_negotiation_is_cancelled(self, configured_mechanism):
        """Two strongly negative utilities must never conclude."""
        _, information = configured_mechanism
        outcome = BoscoService.negotiate(information, -0.95, -0.95)
        assert not outcome.concluded
        assert outcome.post_utility_x == 0.0
        assert outcome.nash_product == 0.0


class TestFig2Shape:
    def test_more_choices_do_not_hurt_the_best_pod(self):
        """The headline Fig. 2 trend: the minimum PoD shrinks (or at least
        does not grow) when the mechanism may use more choices."""
        service = BoscoService(paper_distribution_u1(), seed=21)
        few = service.pod_statistics(5, trials=12)["min"]
        many = service.pod_statistics(40, trials=12)["min"]
        assert many <= few + 0.05


class TestBackends:
    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            BoscoService(paper_distribution_u1(), backend="quantum")

    def test_default_backend_is_batched(self):
        service = BoscoService(paper_distribution_u1())
        assert service.backend == "batched"
        assert service.engine is not None

    def test_reference_backend_still_works(self):
        service = BoscoService(paper_distribution_u1(), seed=5, backend="reference")
        stats = service.pod_statistics(10, trials=5)
        assert stats["trials"] + stats["skipped_trials"] == 5

    def test_quantile_construction_on_the_batched_backend(self):
        service = BoscoService(
            paper_distribution_u1(), seed=0, choice_construction="quantile"
        )
        information = service.configure(12, trials=1)
        assert information.verify_equilibrium()

    def test_shared_engine_instance_is_used(self):
        from repro.bargaining.engine import NegotiationEngine

        engine = NegotiationEngine()
        service = BoscoService(paper_distribution_u1(), engine=engine)
        assert service.engine is engine


class TestSkippedTrialAccounting:
    def test_counter_starts_at_zero_and_accumulates(self):
        service = BoscoService(paper_distribution_u1(), seed=5)
        assert service.skipped_trials == 0
        stats = service.pod_statistics(10, trials=8)
        assert service.skipped_trials == stats["skipped_trials"]
        before = service.skipped_trials
        service.pod_statistics(10, trials=4)
        assert service.skipped_trials >= before

    def test_statistics_report_skipped_trials(self):
        service = BoscoService(paper_distribution_u1(), seed=5)
        stats = service.pod_statistics(12, trials=6)
        assert stats["skipped_trials"] == 6 - stats["trials"]
        assert stats["skipped_trials"] >= 0.0


class TestTrialCohorts:
    """The packed-cohort entry point behind session/serve coalescing."""

    def test_draw_trial_pairs_is_seed_deterministic(self):
        from repro.bargaining.mechanism import draw_trial_pairs

        distribution = paper_distribution_u1()
        first = draw_trial_pairs(distribution, 6, 3, seed=5)
        again = draw_trial_pairs(distribution, 6, 3, seed=5)
        assert len(first) == 3
        for (ax, ay), (bx, by) in zip(first, again):
            assert ax.finite_values == bx.finite_values
            assert ay.finite_values == by.finite_values

    def test_packed_cohorts_are_bit_identical_to_solo_solves(self):
        from repro.bargaining.engine import NegotiationEngine
        from repro.bargaining.mechanism import draw_trial_pairs, solve_trial_cohorts

        distribution = paper_distribution_u1()
        cohorts = [
            draw_trial_pairs(distribution, 8, trials, seed=seed)
            for trials, seed in ((3, 1), (5, 2), (2, 9))
        ]
        packed = solve_trial_cohorts(NegotiationEngine(), distribution, cohorts)
        assert [len(s.batch) for s in packed] == [3, 5, 2]
        for cohort, solved in zip(cohorts, packed):
            solo = solve_trial_cohorts(
                NegotiationEngine(), distribution, [cohort]
            )[0]
            assert np.array_equal(
                solved.solution.pods, solo.solution.pods, equal_nan=True
            )
            assert np.array_equal(
                solved.solution.nash_products,
                solo.solution.nash_products,
                equal_nan=True,
            )
            assert np.array_equal(
                solved.solution.equilibria.converged,
                solo.solution.equilibria.converged,
            )

    def test_empty_cohort_list_is_empty(self):
        from repro.bargaining.engine import NegotiationEngine
        from repro.bargaining.mechanism import solve_trial_cohorts

        assert solve_trial_cohorts(
            NegotiationEngine(), paper_distribution_u1(), []
        ) == []
