"""Unit tests for threshold strategies and Algorithm 1 (best response)."""

import math

import pytest

from repro.bargaining.choices import CANCEL, ChoiceSet
from repro.bargaining.strategy import (
    ThresholdStrategy,
    compute_best_response,
    truthful_like_strategy,
)


@pytest.fixture()
def three_choices():
    return ChoiceSet.from_values([-0.5, 0.0, 0.5])


class TestThresholdStrategy:
    def test_threshold_count_must_match(self, three_choices):
        with pytest.raises(ValueError):
            ThresholdStrategy(choices=three_choices, thresholds=(-math.inf, 0.0))

    def test_first_threshold_must_be_minus_infinity(self, three_choices):
        with pytest.raises(ValueError):
            ThresholdStrategy(
                choices=three_choices, thresholds=(0.0, 0.1, 0.2, 0.3)
            )

    def test_thresholds_must_be_monotone(self, three_choices):
        with pytest.raises(ValueError):
            ThresholdStrategy(
                choices=three_choices, thresholds=(-math.inf, 0.5, 0.2, 0.7)
            )

    def test_choice_lookup(self, three_choices):
        strategy = ThresholdStrategy(
            choices=three_choices, thresholds=(-math.inf, -0.4, 0.1, 0.6)
        )
        assert strategy(-1.0) == CANCEL
        assert strategy(-0.2) == -0.5
        assert strategy(0.3) == 0.0
        assert strategy(0.9) == 0.5

    def test_interval_boundaries_are_half_open(self, three_choices):
        strategy = ThresholdStrategy(
            choices=three_choices, thresholds=(-math.inf, -0.4, 0.1, 0.6)
        )
        assert strategy(0.1) == 0.0
        assert strategy(0.6) == 0.5

    def test_interval(self, three_choices):
        strategy = ThresholdStrategy(
            choices=three_choices, thresholds=(-math.inf, -0.4, 0.1, 0.6)
        )
        assert strategy.interval(0) == (-math.inf, -0.4)
        assert strategy.interval(3) == (0.6, math.inf)

    def test_equilibrium_choice_indices_skip_empty_intervals(self, three_choices):
        strategy = ThresholdStrategy(
            choices=three_choices, thresholds=(-math.inf, 0.1, 0.1, 0.6)
        )
        assert strategy.equilibrium_choice_indices() == (0, 2, 3)

    def test_shortest_nonempty_interval(self, three_choices):
        strategy = ThresholdStrategy(
            choices=three_choices, thresholds=(-math.inf, -0.4, 0.1, 0.6)
        )
        assert strategy.shortest_nonempty_interval() == pytest.approx(0.5)

    def test_approximately_equal(self, three_choices):
        a = ThresholdStrategy(choices=three_choices, thresholds=(-math.inf, -0.4, 0.1, 0.6))
        b = ThresholdStrategy(
            choices=three_choices, thresholds=(-math.inf, -0.4 + 1e-12, 0.1, 0.6)
        )
        c = ThresholdStrategy(choices=three_choices, thresholds=(-math.inf, 0.0, 0.1, 0.6))
        assert a.approximately_equal(b)
        assert not a.approximately_equal(c)

    def test_truthful_like_strategy(self, three_choices):
        strategy = truthful_like_strategy(three_choices)
        assert strategy(-1.0) == CANCEL
        assert strategy(-0.5) == -0.5
        assert strategy(0.2) == 0.0
        assert strategy(10.0) == 0.5


class TestComputeBestResponse:
    def test_requires_one_line_per_choice(self, three_choices):
        with pytest.raises(ValueError):
            compute_best_response(three_choices, [0.0], [0.0])

    def test_upper_envelope_simple_case(self, three_choices):
        # Lines: cancel 0, then 0.2u + 0.3, 0.5u + 0.1, 1.0u - 0.4.
        slopes = [0.0, 0.2, 0.5, 1.0]
        intercepts = [0.0, 0.3, 0.1, -0.4]
        strategy = compute_best_response(three_choices, slopes, intercepts)
        # Verify pointwise against brute force over a utility grid.
        for u in [x / 10.0 for x in range(-30, 31)]:
            best_index = max(
                range(4), key=lambda i: (slopes[i] * u + intercepts[i], slopes[i])
            )
            chosen = strategy.choice_index(u)
            chosen_value = slopes[chosen] * u + intercepts[chosen]
            best_value = slopes[best_index] * u + intercepts[best_index]
            assert chosen_value == pytest.approx(best_value, abs=1e-9)

    def test_dominated_line_gets_empty_interval(self, three_choices):
        # The second finite choice has the same slope as the first but a
        # lower intercept: it must never be played.
        slopes = [0.0, 0.5, 0.5, 1.0]
        intercepts = [0.0, 0.4, 0.1, -0.2]
        strategy = compute_best_response(three_choices, slopes, intercepts)
        low, high = strategy.interval(2)
        assert high <= low

    def test_cancel_option_plays_for_very_negative_utilities(self, three_choices):
        slopes = [0.0, 0.3, 0.6, 0.9]
        intercepts = [0.0, -0.1, -0.2, -0.3]
        strategy = compute_best_response(three_choices, slopes, intercepts)
        assert strategy(-100.0) == CANCEL

    def test_highest_choice_plays_for_large_utilities(self, three_choices):
        slopes = [0.0, 0.3, 0.6, 0.9]
        intercepts = [0.0, 0.1, 0.0, -0.2]
        strategy = compute_best_response(three_choices, slopes, intercepts)
        assert strategy(100.0) == 0.5

    def test_all_identical_lines_keep_single_choice(self, three_choices):
        slopes = [0.0, 0.0, 0.0, 0.0]
        intercepts = [0.0, 0.0, 0.0, 0.0]
        strategy = compute_best_response(three_choices, slopes, intercepts)
        # With all lines identical there is no takeover point: the cancel
        # option is played everywhere.
        assert strategy(5.0) == CANCEL
        assert strategy(-5.0) == CANCEL


class TestChoiceIndexBoundaries:
    """Regression pins for the bisect-based ``choice_index`` lookup.

    The lookup is ``bisect_right`` over the threshold series (O(log W)
    instead of a linear scan); these tests freeze its behavior exactly
    at interval boundaries, where an off-by-one in the bisection side
    would silently flip claims.
    """

    def test_utility_exactly_on_a_threshold_plays_that_choice(self, three_choices):
        strategy = ThresholdStrategy(
            choices=three_choices, thresholds=(-math.inf, -0.4, 0.1, 0.6)
        )
        # Intervals are half-open [t_i, t_{i+1}): the boundary belongs
        # to the upper choice.
        assert strategy.choice_index(-0.4) == 1
        assert strategy.choice_index(0.1) == 2
        assert strategy.choice_index(0.6) == 3

    def test_just_below_a_threshold_plays_the_lower_choice(self, three_choices):
        strategy = ThresholdStrategy(
            choices=three_choices, thresholds=(-math.inf, -0.4, 0.1, 0.6)
        )
        assert strategy.choice_index(math.nextafter(0.1, -math.inf)) == 1
        assert strategy.choice_index(math.nextafter(0.6, -math.inf)) == 2

    def test_duplicated_thresholds_resolve_to_the_last_choice(self, three_choices):
        # An empty interval [0.1, 0.1) can never be played: the shared
        # boundary belongs to the rightmost choice carrying it.
        strategy = ThresholdStrategy(
            choices=three_choices, thresholds=(-math.inf, 0.1, 0.1, 0.1)
        )
        assert strategy.choice_index(0.1) == 3
        assert strategy.choice_index(math.nextafter(0.1, -math.inf)) == 0
        assert 1 not in strategy.equilibrium_choice_indices()
        assert 2 not in strategy.equilibrium_choice_indices()

    def test_extreme_utilities(self, three_choices):
        strategy = ThresholdStrategy(
            choices=three_choices, thresholds=(-math.inf, -0.4, 0.1, 0.6)
        )
        assert strategy.choice_index(-math.inf) == 0
        assert strategy.choice_index(math.inf) == 3

    def test_infinite_upper_thresholds_never_play(self, three_choices):
        strategy = ThresholdStrategy(
            choices=three_choices, thresholds=(-math.inf, 0.0, math.inf, math.inf)
        )
        assert strategy.choice_index(math.inf) == 3
        assert strategy.choice_index(1e300) == 1

    def test_matches_a_linear_scan_reference(self, three_choices):
        strategy = ThresholdStrategy(
            choices=three_choices, thresholds=(-math.inf, -0.4, -0.4, 0.6)
        )

        def linear_scan(utility):
            best = 0
            for index in range(len(strategy.thresholds)):
                if strategy.thresholds[index] <= utility:
                    best = index
            return best

        probes = [-1.0, -0.4, -0.3999, 0.0, 0.6, 0.7, math.inf, -math.inf]
        for utility in probes:
            assert strategy.choice_index(utility) == linear_scan(utility)
