"""Unit tests for the posted-price baseline mechanism."""

import numpy as np
import pytest

from repro.bargaining.baselines import (
    PostedPriceMechanism,
    optimal_posted_price,
)
from repro.bargaining.distributions import (
    JointUtilityDistribution,
    UniformUtilityDistribution,
    paper_distribution_u1,
    paper_distribution_u2,
)
from repro.bargaining.mechanism import BoscoService


class TestPostedPriceMechanism:
    def test_acceptance_is_truthful_threshold(self):
        mechanism = PostedPriceMechanism(price=0.2)
        outcome = mechanism.arbitrate(0.5, 0.1)
        assert outcome.accepted_x  # 0.5 - 0.2 >= 0
        assert outcome.accepted_y  # 0.1 + 0.2 >= 0
        assert outcome.concluded

    def test_rejection_when_price_too_high_for_x(self):
        mechanism = PostedPriceMechanism(price=0.8)
        outcome = mechanism.arbitrate(0.5, 0.5)
        assert not outcome.accepted_x
        assert not outcome.concluded
        assert outcome.post_utility_x == 0.0
        assert outcome.nash_product == 0.0

    def test_individual_rationality(self):
        rng = np.random.default_rng(1)
        mechanism = PostedPriceMechanism(price=0.1)
        for ux, uy in rng.uniform(-1.0, 1.0, size=(200, 2)):
            outcome = mechanism.arbitrate(float(ux), float(uy))
            assert outcome.post_utility_x >= 0.0
            assert outcome.post_utility_y >= 0.0

    def test_budget_balance(self):
        mechanism = PostedPriceMechanism(price=0.3)
        outcome = mechanism.arbitrate(0.9, -0.1)
        assert outcome.concluded
        assert outcome.post_utility_x + outcome.post_utility_y == pytest.approx(0.8)

    def test_not_ex_post_efficient(self):
        """A viable agreement straddling the price is cancelled — the
        inefficiency BOSCO is designed to shrink."""
        mechanism = PostedPriceMechanism(price=0.5)
        outcome = mechanism.arbitrate(0.3, 0.3)  # surplus 0.6 > 0
        assert not outcome.concluded

    def test_expected_nash_product_matches_monte_carlo(self):
        distribution = paper_distribution_u1()
        mechanism = PostedPriceMechanism(price=0.15)
        analytic = mechanism.expected_nash_product(distribution)
        rng = np.random.default_rng(3)
        samples = distribution.sample(rng, size=200_000)
        empirical = float(
            np.mean(
                [mechanism.arbitrate(float(x), float(y)).nash_product for x, y in samples]
            )
        )
        assert analytic == pytest.approx(empirical, abs=5e-3)

    def test_efficiency_loss_in_unit_interval(self):
        mechanism = PostedPriceMechanism(price=0.0)
        loss = mechanism.efficiency_loss(paper_distribution_u1())
        assert 0.0 <= loss <= 1.0

    def test_efficiency_loss_undefined_for_hopeless_distribution(self):
        hopeless = JointUtilityDistribution(
            UniformUtilityDistribution(-2.0, -1.0), UniformUtilityDistribution(-2.0, -1.0)
        )
        with pytest.raises(ValueError):
            PostedPriceMechanism(price=0.0).efficiency_loss(hopeless)


class TestOptimalPostedPrice:
    def test_symmetric_distribution_has_zero_optimal_price(self):
        mechanism = optimal_posted_price(paper_distribution_u1())
        assert mechanism.price == pytest.approx(0.0, abs=0.02)

    def test_optimal_price_beats_arbitrary_prices(self):
        distribution = paper_distribution_u2()
        best = optimal_posted_price(distribution)
        best_value = best.expected_nash_product(distribution)
        for price in (-0.4, -0.1, 0.2, 0.5):
            assert PostedPriceMechanism(price).expected_nash_product(distribution) <= (
                best_value + 1e-9
            )

    def test_bosco_beats_the_dsic_baseline(self):
        """The §V-B argument: tolerating bounded dishonesty (BOSCO) is more
        efficient than insisting on dominant-strategy truthfulness."""
        distribution = paper_distribution_u1()
        baseline_loss = optimal_posted_price(distribution).efficiency_loss(distribution)
        service = BoscoService(distribution, seed=8)
        bosco_pod = service.configure(30, trials=10).price_of_dishonesty
        assert bosco_pod < baseline_loss

    def test_disjoint_supports_return_neutral_price(self):
        distribution = JointUtilityDistribution(
            UniformUtilityDistribution(5.0, 6.0), UniformUtilityDistribution(1.0, 2.0)
        )
        mechanism = optimal_posted_price(distribution)
        # Any price in the huge feasible band concludes everything; just
        # check the search returns something sensible and IR holds.
        outcome = mechanism.arbitrate(5.5, 1.5)
        assert outcome.post_utility_x >= 0.0 or not outcome.concluded
