"""Unit tests for bargaining-efficiency metrics (expected Nash product, PoD)."""

import math

import numpy as np
import pytest

from repro.bargaining.choices import ChoiceSet, random_choice_set
from repro.bargaining.distributions import (
    JointUtilityDistribution,
    UniformUtilityDistribution,
    paper_distribution_u1,
    paper_distribution_u2,
)
from repro.bargaining.efficiency import (
    expected_nash_product,
    expected_truthful_nash_product,
    nash_product_value,
    price_of_dishonesty,
)
from repro.bargaining.game import BargainingGame, StrategyProfile
from repro.bargaining.strategy import truthful_like_strategy


class TestNashProductValue:
    def test_cancelled_when_apparent_surplus_negative(self):
        assert nash_product_value(1.0, 1.0, 0.2, -0.5) == 0.0

    def test_cancelled_when_either_claim_is_cancel(self):
        assert nash_product_value(1.0, 1.0, -math.inf, 0.5) == 0.0

    def test_concluded_value(self):
        # Claims 0.4 and 0.2: transfer 0.1; (1.0-0.1)*(0.5+0.1) = 0.54.
        assert nash_product_value(1.0, 0.5, 0.4, 0.2) == pytest.approx(0.54)

    def test_truthful_claims_give_square_of_half_surplus(self):
        value = nash_product_value(0.8, 0.2, 0.8, 0.2)
        assert value == pytest.approx(((0.8 + 0.2) / 2.0) ** 2)


class TestExpectedTruthfulNashProduct:
    def test_u1_analytic_value(self):
        """For U(1) = Unif[-1,1]², E[((x+y)/2)² ; x+y ≥ 0] = 1/12.

        With s = x + y triangular on [-2, 2], the integral is
        ∫_0^2 (s/2)² (2−s)/4 ds = 1/12.
        """
        value = expected_truthful_nash_product(paper_distribution_u1(), grid_size=800)
        assert value == pytest.approx(1.0 / 12.0, rel=5e-3)

    def test_positive_for_paper_distributions(self):
        assert expected_truthful_nash_product(paper_distribution_u1()) > 0.0
        assert expected_truthful_nash_product(paper_distribution_u2()) > 0.0

    def test_all_negative_support_gives_zero(self):
        joint = JointUtilityDistribution(
            UniformUtilityDistribution(-2.0, -1.0), UniformUtilityDistribution(-2.0, -1.0)
        )
        assert expected_truthful_nash_product(joint) == pytest.approx(0.0)


class TestExpectedNashProduct:
    def test_monte_carlo_agreement(self):
        """The rectangle decomposition must agree with Monte-Carlo evaluation."""
        distribution = paper_distribution_u1()
        rng = np.random.default_rng(5)
        choices_x = random_choice_set(distribution.marginal_x, 12, rng)
        choices_y = random_choice_set(distribution.marginal_y, 12, rng)
        profile = StrategyProfile(
            strategy_x=truthful_like_strategy(choices_x),
            strategy_y=truthful_like_strategy(choices_y),
        )
        analytic = expected_nash_product(profile, distribution)
        samples = distribution.sample(rng, size=200_000)
        empirical = float(
            np.mean(
                [
                    nash_product_value(
                        ux, uy, profile.strategy_x(ux), profile.strategy_y(uy)
                    )
                    for ux, uy in samples
                ]
            )
        )
        assert analytic == pytest.approx(empirical, abs=5e-3)

    def test_truthful_quantized_strategy_close_to_truthful_bound(self):
        """With many quantized choices, the expected product approaches E[N|σ⊤]."""
        distribution = paper_distribution_u1()
        values = [v / 100.0 for v in range(-100, 101)]
        choices = ChoiceSet.from_values(values)
        profile = StrategyProfile(
            strategy_x=truthful_like_strategy(choices),
            strategy_y=truthful_like_strategy(choices),
        )
        quantized = expected_nash_product(profile, distribution)
        truthful = expected_truthful_nash_product(distribution)
        assert quantized == pytest.approx(truthful, rel=0.05)


class TestPriceOfDishonesty:
    def test_pod_of_equilibrium_in_unit_interval(self):
        distribution = paper_distribution_u1()
        rng = np.random.default_rng(11)
        game = BargainingGame(
            distribution_x=distribution.marginal_x,
            distribution_y=distribution.marginal_y,
            choices_x=random_choice_set(distribution.marginal_x, 20, rng),
            choices_y=random_choice_set(distribution.marginal_y, 20, rng),
        )
        profile = game.find_equilibrium()
        pod = price_of_dishonesty(profile, distribution)
        assert 0.0 <= pod <= 1.0

    def test_precomputed_truthful_value_is_honoured(self):
        distribution = paper_distribution_u1()
        rng = np.random.default_rng(12)
        choices = random_choice_set(distribution.marginal_x, 10, rng)
        profile = StrategyProfile(
            strategy_x=truthful_like_strategy(choices),
            strategy_y=truthful_like_strategy(choices),
        )
        direct = price_of_dishonesty(profile, distribution)
        cached = price_of_dishonesty(
            profile,
            distribution,
            truthful_value=expected_truthful_nash_product(distribution),
        )
        assert direct == pytest.approx(cached, abs=1e-9)

    def test_undefined_when_truthful_value_zero(self):
        joint = JointUtilityDistribution(
            UniformUtilityDistribution(-2.0, -1.0), UniformUtilityDistribution(-2.0, -1.0)
        )
        choices = ChoiceSet.from_values([-1.5])
        profile = StrategyProfile(
            strategy_x=truthful_like_strategy(choices),
            strategy_y=truthful_like_strategy(choices),
        )
        with pytest.raises(ValueError):
            price_of_dishonesty(profile, joint)
