"""Integration test: a full billing cycle of a flow-volume agreement.

Combines the optimization, time-series, billing, and compliance layers:
negotiate flow-volume targets for the Fig. 1 agreement, simulate a
billing period of realized traffic on every new segment, bill it under
the 95th-percentile rule, check compliance with the negotiated
allowances, and re-evaluate what the agreement was actually worth.
"""

import numpy as np
import pytest

from repro.agreements import joint_utilities
from repro.agreements.compliance import (
    SegmentUsage,
    check_compliance,
    overage_charge,
    realized_scenario,
)
from repro.economics.timeseries import BillingRule, DiurnalTrafficModel, billed_volume
from repro.optimization.flow_volume import optimize_flow_volume_targets
from repro.topology import AS_D, AS_E


@pytest.fixture()
def negotiated(figure1_scenario, figure1_businesses):
    return optimize_flow_volume_targets(
        figure1_scenario, figure1_businesses, restarts=3, seed=1
    )


def simulate_usage(negotiated, *, utilization: float, seed: int = 0):
    """Simulate a billing period where each segment runs at a fraction of its allowance."""
    rng = np.random.default_rng(seed)
    usage = []
    for target in negotiated.targets:
        if target.total_allowance <= 0.0:
            continue
        mean_volume = target.total_allowance * utilization
        model = DiurnalTrafficModel(
            mean_volume=mean_volume, samples_per_day=96, days=7, burstiness=0.1
        )
        samples = model.generate(rng)
        realized_total = billed_volume(samples, BillingRule.AVERAGE)
        share = (
            target.rerouted_volume / target.total_allowance
            if target.total_allowance > 0.0
            else 0.0
        )
        usage.append(
            SegmentUsage(
                path=target.path,
                rerouted_volume=realized_total * share,
                attracted_volume=realized_total * (1.0 - share),
            )
        )
    return usage


class TestBillingCycle:
    def test_compliant_period(self, negotiated, figure1_scenario, figure1_businesses):
        usage = simulate_usage(negotiated, utilization=0.6, seed=1)
        report = check_compliance(negotiated, usage)
        assert report.compliant
        assert overage_charge(report, unit_price=2.0) == pytest.approx(0.0)

        realized = realized_scenario(figure1_scenario, usage)
        utilities = joint_utilities(realized, figure1_businesses)
        # Under-delivery shrinks both parties' exposure relative to the
        # negotiated optimum, but the agreement stays individually viable
        # for the party that mostly saves (D).
        assert utilities[AS_D] > 0.0
        assert abs(utilities[AS_E]) <= abs(negotiated.utility_y) + 1e-6 or utilities[AS_E] <= 0.0

    def test_overloaded_period_triggers_violations_and_charges(
        self, negotiated, figure1_scenario, figure1_businesses
    ):
        usage = simulate_usage(negotiated, utilization=1.5, seed=2)
        report = check_compliance(negotiated, usage)
        assert not report.compliant
        assert report.total_overage > 0.0
        assert overage_charge(report, unit_price=2.0) > 0.0
        # The realized scenario can still be evaluated economically.
        realized = realized_scenario(figure1_scenario, usage)
        utilities = joint_utilities(realized, figure1_businesses)
        assert set(utilities) == {AS_D, AS_E}

    def test_p95_billing_needs_headroom_over_average_volumes(self, negotiated):
        """Billing at the 95th percentile of a bursty series exceeds the
        average the targets were negotiated from — the predictability
        caveat of §IV-C, quantified."""
        target = next(t for t in negotiated.targets if t.total_allowance > 0.0)
        model = DiurnalTrafficModel(
            mean_volume=target.total_allowance, samples_per_day=96, days=14, burstiness=0.3
        )
        samples = model.generate(np.random.default_rng(3))
        p95 = billed_volume(samples, BillingRule.NINETY_FIFTH_PERCENTILE)
        average = billed_volume(samples, BillingRule.AVERAGE)
        assert p95 > average
        assert p95 > target.total_allowance
