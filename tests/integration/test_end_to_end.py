"""Integration tests crossing subsystem boundaries.

These tests exercise the full pipeline the paper describes: build a
topology, identify candidate mutuality-based agreements, evaluate and
optimize them economically, negotiate them through BOSCO, apply them to
a path-aware network, and measure the resulting path-diversity gains.
"""

import numpy as np
import pytest

from repro.agreements import (
    AgreementScenario,
    SegmentTraffic,
    enumerate_mutuality_agreements,
    joint_utilities,
)
from repro.bargaining import BoscoService, JointUtilityDistribution, UniformUtilityDistribution
from repro.economics import ENDHOSTS, default_business_models
from repro.optimization import compare_methods, negotiate_cash_agreement
from repro.paths import analyze_path_diversity, build_ma_path_index, grc_length3_paths
from repro.routing import BGPSimulator, ForwardingEngine, Packet, PathAwareNetwork
from repro.routing.policies import gao_rexford_policies
from repro.topology import AS_A, AS_B, AS_D, AS_E, figure1_topology


class TestAgreementLifecycle:
    """From the Fig. 1 topology to a negotiated, deployed agreement."""

    def test_full_figure1_lifecycle(self, figure1_scenario, figure1_businesses):
        graph = figure1_topology()
        agreement = figure1_scenario.agreement

        # 1. The agreement violates the GRC, so it is only deployable in a PAN.
        assert not agreement.is_grc_conforming(graph)

        # 2. Economically, D gains and E loses, but the joint surplus is positive.
        utilities = joint_utilities(figure1_scenario, figure1_businesses)
        assert utilities[AS_D] > 0 > utilities[AS_E]
        cash = negotiate_cash_agreement(figure1_scenario, figure1_businesses)
        assert cash.concluded and cash.post_utility_y >= 0.0

        # 3. Deploying the agreement authorizes the new segments in the PAN.
        network = PathAwareNetwork(graph)
        network.authorize_grc_segments()
        assert not network.is_valid_path((AS_D, AS_E, AS_B))
        network.apply_agreement(agreement)
        assert network.is_valid_path((AS_D, AS_E, AS_B))

        # 4. Packets embedded with the new path are forwarded loop-free.
        engine = ForwardingEngine(network)
        result = engine.forward(Packet(path=(AS_D, AS_E, AS_B)))
        assert result.delivered
        assert len(set(result.traversed)) == len(result.traversed)

        # 5. Meanwhile BGP with GRC policies still converges on the same topology
        #    (the agreement lives purely in the PAN's segment authorization).
        outcome = BGPSimulator(
            graph=graph, destination=AS_A, policies=gao_rexford_policies(graph)
        ).run()
        assert outcome.converged

    def test_bosco_negotiation_of_estimated_utilities(
        self, figure1_scenario, figure1_businesses
    ):
        """Negotiate the Fig. 1 agreement through BOSCO with utility
        distributions centred on the true (scenario-derived) utilities."""
        utilities = joint_utilities(figure1_scenario, figure1_businesses)
        scale = max(abs(u) for u in utilities.values())
        distribution = JointUtilityDistribution(
            marginal_x=UniformUtilityDistribution(-scale, 2.0 * scale),
            marginal_y=UniformUtilityDistribution(-scale, 2.0 * scale),
        )
        service = BoscoService(distribution, seed=17)
        information = service.configure(25, trials=5)
        outcome = BoscoService.negotiate(
            information, utilities[AS_D], utilities[AS_E]
        )
        # The joint surplus is positive, so soundness permits conclusion and
        # individual rationality guarantees neither party is worse off.
        assert outcome.post_utility_x >= -1e-9
        assert outcome.post_utility_y >= -1e-9
        if outcome.concluded:
            assert outcome.post_utility_x + outcome.post_utility_y == pytest.approx(
                utilities[AS_D] + utilities[AS_E]
            )


class TestTopologyWideWorkflow:
    def test_enumerate_evaluate_and_measure_diversity(self, small_topology):
        graph = small_topology.graph
        agreements = list(enumerate_mutuality_agreements(graph))
        assert agreements

        # Economic screening of a handful of agreements with synthetic traffic.
        businesses = default_business_models(graph)
        rng = np.random.default_rng(3)
        concluded = []
        for agreement in agreements[:10]:
            segments = []
            for segment in agreement.all_segments():
                segments.append(
                    SegmentTraffic(
                        segment=segment,
                        rerouted={None: float(rng.uniform(0.0, 5.0))},
                        attracted={ENDHOSTS: float(rng.uniform(0.0, 3.0))},
                    )
                )
            scenario = AgreementScenario(agreement=agreement, segments=segments)
            comparison = compare_methods(scenario, businesses, restarts=1, seed=1)
            if comparison.cash_concluded:
                concluded.append(agreement)
        assert concluded, "at least some agreements should be economically viable"

        # Path-diversity effect of all agreements.
        diversity = analyze_path_diversity(
            graph, agreements=agreements, sample_size=30, seed=2
        )
        assert diversity.path_cdf("MA").mean >= diversity.path_cdf("GRC").mean

    def test_pan_authorization_matches_path_index(self, small_topology):
        """Paths reported by the analysis are exactly the ones the PAN forwards."""
        graph = small_topology.graph
        agreements = list(enumerate_mutuality_agreements(graph))
        index = build_ma_path_index(agreements)
        network = PathAwareNetwork(graph)
        network.authorize_grc_segments()
        for agreement in agreements:
            network.apply_agreement(agreement)
        engine = ForwardingEngine(network)

        rng = np.random.default_rng(9)
        sources = rng.choice(sorted(graph.ases), size=10, replace=False)
        for source in (int(s) for s in sources):
            ma_paths = list(index.all_paths(source))[:20]
            grc_paths = list(grc_length3_paths(graph, source))[:20]
            for path in ma_paths + grc_paths:
                result = engine.forward(Packet(path=path))
                assert result.delivered, f"path {path} should be forwardable"
