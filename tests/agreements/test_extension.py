"""Unit tests for agreement-path extension (§III-B3)."""

import pytest

from repro.agreements import (
    AgreementError,
    ExtensionAgreement,
    SegmentOffer,
    figure1_extension_example,
    figure1_mutuality_agreement,
)
from repro.agreements.agreement import PathSegment
from repro.topology import AS_A, AS_B, AS_D, AS_E, AS_F, figure1_topology


@pytest.fixture()
def base_agreement():
    return figure1_mutuality_agreement(figure1_topology())


class TestSegmentOffer:
    def test_valid_offer(self, base_agreement):
        segment = PathSegment(beneficiary=AS_E, partner=AS_D, target=AS_A)
        offer = SegmentOffer(owner=AS_E, segment=segment, base_agreement=base_agreement)
        assert offer.segment.path == (AS_E, AS_D, AS_A)

    def test_owner_must_be_beneficiary(self, base_agreement):
        segment = PathSegment(beneficiary=AS_E, partner=AS_D, target=AS_A)
        with pytest.raises(AgreementError):
            SegmentOffer(owner=AS_D, segment=segment, base_agreement=base_agreement)

    def test_segment_must_come_from_base_agreement(self, base_agreement):
        foreign = PathSegment(beneficiary=AS_E, partner=AS_D, target=AS_B)
        with pytest.raises(AgreementError):
            SegmentOffer(owner=AS_E, segment=foreign, base_agreement=base_agreement)


class TestExtensionAgreement:
    def test_figure1_example(self, base_agreement):
        extension = figure1_extension_example(base_agreement)
        assert extension.party_x == AS_E
        assert extension.party_y == AS_F
        paths = extension.extended_paths_for(AS_F)
        assert paths == ((AS_F, AS_E, AS_D, AS_A),)

    def test_counterparty(self, base_agreement):
        extension = figure1_extension_example(base_agreement)
        assert extension.counterparty(AS_E) == AS_F
        assert extension.counterparty(AS_F) == AS_E
        with pytest.raises(AgreementError):
            extension.counterparty(AS_A)

    def test_offers_to(self, base_agreement):
        extension = figure1_extension_example(base_agreement)
        assert len(extension.offers_to(AS_F)) == 1
        assert extension.offers_to(AS_E) == ()

    def test_depends_on_base_agreement(self, base_agreement):
        extension = figure1_extension_example(base_agreement)
        assert extension.depends_on() == frozenset({id(base_agreement)})

    def test_same_party_twice_rejected(self):
        with pytest.raises(AgreementError):
            ExtensionAgreement(party_x=1, party_y=1)

    def test_offer_ownership_must_match_party(self, base_agreement):
        segment = PathSegment(beneficiary=AS_E, partner=AS_D, target=AS_A)
        offer = SegmentOffer(owner=AS_E, segment=segment, base_agreement=base_agreement)
        with pytest.raises(AgreementError):
            ExtensionAgreement(party_x=AS_D, party_y=AS_F, segment_offers_x=(offer,))

    def test_party_inside_segment_is_skipped(self, base_agreement):
        segment = PathSegment(beneficiary=AS_E, partner=AS_D, target=AS_A)
        offer = SegmentOffer(owner=AS_E, segment=segment, base_agreement=base_agreement)
        extension = ExtensionAgreement(
            party_x=AS_E, party_y=AS_D, segment_offers_x=(offer,)
        )
        # D is already on the offered segment, so it gains no new longer path.
        assert extension.extended_paths_for(AS_D) == ()
