"""Unit tests for mutuality-based agreements and their enumeration (§VI)."""

import pytest

from repro.agreements import (
    AgreementError,
    agreements_involving,
    enumerate_mutuality_agreements,
    figure1_mutuality_agreement,
    mutuality_agreement,
)
from repro.topology import (
    AS_A,
    AS_B,
    AS_C,
    AS_D,
    AS_E,
    AS_F,
    FIGURE1_NAMES,
    figure1_topology,
)


class TestMutualityAgreement:
    def test_figure1_maximal_agreement(self):
        """The maximal MA between D and E offers providers and peers."""
        graph = figure1_topology()
        agreement = mutuality_agreement(graph, AS_D, AS_E)
        assert agreement is not None
        assert agreement.offer_by(AS_D).providers == frozenset({AS_A})
        assert agreement.offer_by(AS_D).peers == frozenset({AS_C})
        assert agreement.offer_by(AS_E).providers == frozenset({AS_B})
        assert agreement.offer_by(AS_E).peers == frozenset({AS_F})

    def test_paper_agreement_fixture_matches_eq6(self):
        graph = figure1_topology()
        agreement = figure1_mutuality_agreement(graph)
        assert agreement.notation(FIGURE1_NAMES) == "[D(↑{A});E(↑{B},→{F})]"

    def test_non_peers_rejected(self):
        graph = figure1_topology()
        with pytest.raises(AgreementError):
            mutuality_agreement(graph, AS_A, AS_D)

    def test_unknown_as_rejected(self):
        graph = figure1_topology()
        with pytest.raises(AgreementError):
            mutuality_agreement(graph, AS_D, 999)

    def test_customers_of_beneficiary_excluded(self):
        """An AS is not offered access to ASes that are already its customers."""
        graph = figure1_topology()
        # Make F a customer of D, then the D–E agreement must not offer F to D.
        graph = graph.copy()
        graph.remove_link(AS_E, AS_F)
        graph.add_provider_customer(AS_D, AS_F)
        graph.add_peering(AS_E, 99)
        agreement = mutuality_agreement(graph, AS_D, AS_E)
        assert AS_F not in agreement.offer_by(AS_E).all_targets

    def test_provider_and_peer_toggles(self):
        graph = figure1_topology()
        only_peers = mutuality_agreement(graph, AS_D, AS_E, include_providers=False)
        assert only_peers.offer_by(AS_D).providers == frozenset()
        assert only_peers.offer_by(AS_D).peers == frozenset({AS_C})
        only_providers = mutuality_agreement(graph, AS_D, AS_E, include_peers=False)
        assert only_providers.offer_by(AS_E).peers == frozenset()
        assert only_providers.offer_by(AS_E).providers == frozenset({AS_B})

    def test_empty_agreement_returns_none(self):
        from repro.topology import ASGraph

        graph = ASGraph()
        graph.add_peering(1, 2)
        assert mutuality_agreement(graph, 1, 2) is None

    def test_resulting_agreement_validates(self):
        graph = figure1_topology()
        agreement = mutuality_agreement(graph, AS_D, AS_E)
        agreement.validate_against(graph)

    def test_mutuality_agreements_violate_grc(self):
        graph = figure1_topology()
        agreement = mutuality_agreement(graph, AS_D, AS_E)
        assert not agreement.is_grc_conforming(graph)


class TestEnumeration:
    def test_one_agreement_per_productive_peering_link(self):
        graph = figure1_topology()
        agreements = list(enumerate_mutuality_agreements(graph))
        # Fig. 1 has peering links A–B, C–D, D–E, E–F.  The tier-1 pair
        # A–B has nothing to offer (no providers, no other peers), so
        # three productive MAs remain.
        assert len(agreements) == 3
        pairs = {frozenset(a.parties) for a in agreements}
        assert frozenset({AS_D, AS_E}) in pairs
        assert frozenset({AS_A, AS_B}) not in pairs

    def test_no_duplicate_pairs(self, small_topology):
        agreements = list(enumerate_mutuality_agreements(small_topology.graph))
        pairs = [frozenset(a.parties) for a in agreements]
        assert len(pairs) == len(set(pairs))

    def test_every_agreement_is_between_peers(self, small_topology):
        graph = small_topology.graph
        for agreement in enumerate_mutuality_agreements(graph):
            x, y = agreement.parties
            assert y in graph.peers(x)

    def test_every_agreement_validates(self, small_topology):
        graph = small_topology.graph
        for agreement in enumerate_mutuality_agreements(graph):
            agreement.validate_against(graph)

    def test_agreements_involving_filter(self):
        graph = figure1_topology()
        agreements = list(enumerate_mutuality_agreements(graph))
        involving_d = agreements_involving(agreements, AS_D)
        assert all(AS_D in a.parties for a in involving_d)
        assert len(involving_d) == 2  # C–D and D–E
