"""Unit tests for the agreement notation and path segments (Eq. 2)."""

import pytest

from repro.agreements import AccessOffer, Agreement, AgreementError, PathSegment
from repro.topology import (
    AS_A,
    AS_B,
    AS_D,
    AS_E,
    AS_F,
    AS_H,
    FIGURE1_NAMES,
    figure1_topology,
)


class TestAccessOffer:
    def test_all_targets(self):
        offer = AccessOffer.of(providers={1}, peers={2, 3}, customers={4})
        assert offer.all_targets == frozenset({1, 2, 3, 4})

    def test_overlapping_roles_rejected(self):
        with pytest.raises(AgreementError):
            AccessOffer.of(providers={1}, peers={1})

    def test_role_of(self):
        offer = AccessOffer.of(providers={1}, peers={2}, customers={3})
        assert offer.role_of(1).value == "provider"
        assert offer.role_of(2).value == "peer"
        assert offer.role_of(3).value == "customer"

    def test_role_of_unknown_target_raises(self):
        with pytest.raises(AgreementError):
            AccessOffer.of(providers={1}).role_of(9)

    def test_is_empty(self):
        assert AccessOffer().is_empty()
        assert not AccessOffer.of(peers={1}).is_empty()

    def test_notation(self):
        offer = AccessOffer.of(providers={1}, peers={3})
        assert offer.notation() == "↑{1},→{3}"
        assert AccessOffer().notation() == "∅"


class TestPathSegment:
    def test_path_and_reverse(self):
        segment = PathSegment(beneficiary=4, partner=5, target=2)
        assert segment.path == (4, 5, 2)
        assert segment.reverse_path == (2, 5, 4)

    def test_distinct_ases_required(self):
        with pytest.raises(AgreementError):
            PathSegment(beneficiary=4, partner=4, target=2)


class TestAgreement:
    @pytest.fixture()
    def figure1_ma(self):
        return Agreement(
            party_x=AS_D,
            party_y=AS_E,
            offer_x=AccessOffer.of(providers={AS_A}),
            offer_y=AccessOffer.of(providers={AS_B}, peers={AS_F}),
        )

    def test_parties(self, figure1_ma):
        assert figure1_ma.parties == (AS_D, AS_E)

    def test_counterparty(self, figure1_ma):
        assert figure1_ma.counterparty(AS_D) == AS_E
        assert figure1_ma.counterparty(AS_E) == AS_D
        with pytest.raises(AgreementError):
            figure1_ma.counterparty(AS_A)

    def test_offer_accessors(self, figure1_ma):
        assert figure1_ma.offer_by(AS_D).providers == frozenset({AS_A})
        assert figure1_ma.offer_to(AS_D).providers == frozenset({AS_B})
        assert figure1_ma.offer_to(AS_E).providers == frozenset({AS_A})

    def test_segments_for_each_party(self, figure1_ma):
        d_segments = {s.path for s in figure1_ma.segments_for(AS_D)}
        e_segments = {s.path for s in figure1_ma.segments_for(AS_E)}
        assert d_segments == {(AS_D, AS_E, AS_B), (AS_D, AS_E, AS_F)}
        assert e_segments == {(AS_E, AS_D, AS_A)}

    def test_all_segments(self, figure1_ma):
        assert len(figure1_ma.all_segments()) == 3

    def test_notation_matches_paper(self, figure1_ma):
        assert figure1_ma.notation(FIGURE1_NAMES) == "[D(↑{A});E(↑{B},→{F})]"

    def test_same_party_twice_rejected(self):
        with pytest.raises(AgreementError):
            Agreement(party_x=1, party_y=1)

    def test_party_cannot_offer_itself(self):
        with pytest.raises(AgreementError):
            Agreement(party_x=1, party_y=2, offer_x=AccessOffer.of(peers={1}))

    def test_party_cannot_offer_the_other_party(self):
        with pytest.raises(AgreementError):
            Agreement(party_x=1, party_y=2, offer_x=AccessOffer.of(customers={2}))

    def test_grc_conformance_of_mutuality_agreement(self, figure1_ma):
        graph = figure1_topology()
        assert not figure1_ma.is_grc_conforming(graph)

    def test_grc_conformance_of_customer_only_agreement(self):
        graph = figure1_topology()
        peering = Agreement(
            party_x=AS_D,
            party_y=AS_E,
            offer_x=AccessOffer.of(customers={AS_H}),
            offer_y=AccessOffer.of(customers={9}),
        )
        assert peering.is_grc_conforming(graph)

    def test_validate_against_topology(self, figure1_ma):
        figure1_ma.validate_against(figure1_topology())

    def test_validate_rejects_wrong_role(self):
        graph = figure1_topology()
        wrong = Agreement(
            party_x=AS_D,
            party_y=AS_E,
            # A is D's provider, not its customer.
            offer_x=AccessOffer.of(customers={AS_A}),
        )
        with pytest.raises(AgreementError):
            wrong.validate_against(graph)

    def test_validate_rejects_unconnected_parties(self):
        graph = figure1_topology()
        unconnected = Agreement(
            party_x=AS_D,
            party_y=AS_F,
            offer_x=AccessOffer.of(providers={AS_A}),
        )
        with pytest.raises(AgreementError):
            unconnected.validate_against(graph)

    def test_validate_rejects_unknown_party(self):
        graph = figure1_topology()
        unknown = Agreement(party_x=AS_D, party_y=999)
        with pytest.raises(AgreementError):
            unknown.validate_against(graph)

    def test_str_uses_notation(self, figure1_ma):
        assert str(figure1_ma).startswith("[")
