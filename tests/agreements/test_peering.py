"""Unit tests for classic peering agreements (§III-B1)."""

import pytest

from repro.agreements import (
    AccessOffer,
    Agreement,
    AgreementError,
    classic_peering_agreement,
    is_classic_peering,
)
from repro.topology import AS_A, AS_C, AS_D, AS_E, AS_G, AS_H, AS_I, figure1_topology


class TestClassicPeeringAgreement:
    def test_figure1_example(self):
        """The §III-B1 example: a_p = [D(↓{H}); E(↓{I})]."""
        graph = figure1_topology()
        agreement = classic_peering_agreement(graph, AS_D, AS_E)
        assert agreement.offer_by(AS_D).customers == frozenset({AS_H})
        assert agreement.offer_by(AS_E).customers == frozenset({AS_I})
        assert agreement.offer_by(AS_D).providers == frozenset()
        assert agreement.offer_by(AS_D).peers == frozenset()

    def test_is_grc_conforming(self):
        graph = figure1_topology()
        agreement = classic_peering_agreement(graph, AS_D, AS_E)
        assert agreement.is_grc_conforming(graph)

    def test_requires_existing_peering_link_by_default(self):
        graph = figure1_topology()
        with pytest.raises(AgreementError):
            classic_peering_agreement(graph, AS_D, AS_I)

    def test_provider_customer_pair_rejected(self):
        graph = figure1_topology()
        with pytest.raises(AgreementError):
            classic_peering_agreement(graph, AS_A, AS_D)

    def test_new_peering_between_unconnected_ases(self):
        graph = figure1_topology()
        agreement = classic_peering_agreement(
            graph, AS_C, AS_E, require_peering_link=False
        )
        assert agreement.offer_by(AS_C).customers == frozenset({AS_G})
        assert agreement.offer_by(AS_E).customers == frozenset({AS_I})

    def test_unknown_as_rejected(self):
        graph = figure1_topology()
        with pytest.raises(AgreementError):
            classic_peering_agreement(graph, AS_D, 999)


class TestIsClassicPeering:
    def test_customer_only_agreement_is_classic(self):
        graph = figure1_topology()
        agreement = classic_peering_agreement(graph, AS_D, AS_E)
        assert is_classic_peering(agreement, graph)

    def test_provider_offer_is_not_classic(self):
        graph = figure1_topology()
        agreement = Agreement(
            party_x=AS_D,
            party_y=AS_E,
            offer_x=AccessOffer.of(providers={AS_A}),
            offer_y=AccessOffer.of(customers={AS_I}),
        )
        assert not is_classic_peering(agreement, graph)

    def test_peer_offer_is_not_classic(self):
        graph = figure1_topology()
        agreement = Agreement(
            party_x=AS_D,
            party_y=AS_E,
            offer_x=AccessOffer.of(peers={AS_C}),
        )
        assert not is_classic_peering(agreement, graph)

    def test_foreign_customer_claim_is_not_classic(self):
        graph = figure1_topology()
        agreement = Agreement(
            party_x=AS_D,
            party_y=AS_E,
            # I is E's customer, not D's.
            offer_x=AccessOffer.of(customers={AS_I}),
        )
        assert not is_classic_peering(agreement, graph)
