"""Unit tests for flow-volume agreement compliance monitoring."""

import pytest

from repro.agreements import joint_utilities
from repro.agreements.compliance import (
    SegmentUsage,
    check_compliance,
    overage_charge,
    realized_scenario,
)
from repro.optimization.flow_volume import optimize_flow_volume_targets
from repro.topology import AS_B, AS_D, AS_E, AS_F


@pytest.fixture()
def negotiated(figure1_scenario, figure1_businesses):
    """A negotiated flow-volume agreement on the Fig. 1 scenario."""
    return optimize_flow_volume_targets(
        figure1_scenario, figure1_businesses, restarts=3, seed=1
    )


class TestSegmentUsage:
    def test_total_volume(self):
        usage = SegmentUsage(path=(AS_D, AS_E, AS_B), rerouted_volume=3.0, attracted_volume=2.0)
        assert usage.total_volume == 5.0

    def test_negative_volumes_rejected(self):
        with pytest.raises(ValueError):
            SegmentUsage(path=(AS_D, AS_E, AS_B), rerouted_volume=-1.0, attracted_volume=0.0)


class TestCheckCompliance:
    def test_compliant_when_within_allowances(self, negotiated):
        usage = [
            SegmentUsage(
                path=target.path,
                rerouted_volume=target.rerouted_volume * 0.5,
                attracted_volume=target.attracted_volume * 0.5,
            )
            for target in negotiated.targets
        ]
        report = check_compliance(negotiated, usage)
        assert report.compliant
        assert report.total_overage == pytest.approx(0.0)
        assert report.violations() == ()

    def test_overage_detected(self, negotiated):
        target = negotiated.targets[0]
        usage = [
            SegmentUsage(
                path=target.path,
                rerouted_volume=target.total_allowance + 5.0,
                attracted_volume=0.0,
            )
        ]
        report = check_compliance(negotiated, usage)
        assert not report.compliant
        assert report.total_overage == pytest.approx(5.0)
        assert len(report.violations()) == 1
        assert report.segment(target.path).overage == pytest.approx(5.0)

    def test_missing_usage_counts_as_zero(self, negotiated):
        report = check_compliance(negotiated, [])
        assert report.compliant
        for segment in report.segments:
            assert segment.realized == 0.0

    def test_unknown_segment_rejected(self, negotiated):
        with pytest.raises(ValueError):
            check_compliance(
                negotiated,
                [SegmentUsage(path=(AS_D, AS_E, 99), rerouted_volume=1.0, attracted_volume=0.0)],
            )

    def test_utilization_and_segment_lookup(self, negotiated):
        target = negotiated.targets[0]
        usage = [
            SegmentUsage(
                path=target.path,
                rerouted_volume=target.total_allowance * 0.25,
                attracted_volume=0.0,
            )
        ]
        report = check_compliance(negotiated, usage)
        assert report.segment(target.path).utilization == pytest.approx(0.25)
        with pytest.raises(KeyError):
            report.segment((1, 2, 3))

    def test_overage_charge(self, negotiated):
        target = negotiated.targets[0]
        usage = [
            SegmentUsage(
                path=target.path,
                rerouted_volume=target.total_allowance + 4.0,
                attracted_volume=0.0,
            )
        ]
        report = check_compliance(negotiated, usage)
        assert overage_charge(report, unit_price=2.0) == pytest.approx(8.0)
        with pytest.raises(ValueError):
            overage_charge(report, unit_price=-1.0)


class TestRealizedScenario:
    def test_utilities_shrink_when_traffic_underdelivers(
        self, figure1_scenario, figure1_businesses
    ):
        """If the expected rerouting and attraction do not materialize, both
        parties' realized utilities fall towards zero — the predictability
        risk §IV-C attributes to cash-compensation agreements."""
        expected = joint_utilities(figure1_scenario, figure1_businesses)
        usage = [
            SegmentUsage(
                path=traffic.segment.path,
                rerouted_volume=traffic.rerouted_volume * 0.1,
                attracted_volume=traffic.attracted_volume * 0.1,
            )
            for traffic in figure1_scenario.segments
        ]
        realized = realized_scenario(figure1_scenario, usage)
        actual = joint_utilities(realized, figure1_businesses)
        assert abs(actual[AS_D]) < abs(expected[AS_D])
        assert abs(actual[AS_E]) < abs(expected[AS_E])

    def test_zero_usage_gives_zero_utilities(self, figure1_scenario, figure1_businesses):
        realized = realized_scenario(figure1_scenario, [])
        utilities = joint_utilities(realized, figure1_businesses)
        assert utilities[AS_D] == pytest.approx(0.0)
        assert utilities[AS_E] == pytest.approx(0.0)

    def test_exact_usage_reproduces_expected_utilities(
        self, figure1_scenario, figure1_businesses
    ):
        usage = [
            SegmentUsage(
                path=traffic.segment.path,
                rerouted_volume=traffic.rerouted_volume,
                attracted_volume=traffic.attracted_volume,
            )
            for traffic in figure1_scenario.segments
        ]
        realized = realized_scenario(figure1_scenario, usage)
        expected = joint_utilities(figure1_scenario, figure1_businesses)
        actual = joint_utilities(realized, figure1_businesses)
        assert actual[AS_D] == pytest.approx(expected[AS_D])
        assert actual[AS_E] == pytest.approx(expected[AS_E])

    def test_unexpected_usage_defaults_to_generic_attribution(
        self, figure1_agreement, figure1_businesses
    ):
        """Usage on a segment whose estimate was zero is attributed to peers /
        end-hosts so the evaluation still works."""
        from repro.agreements import AgreementScenario, SegmentTraffic
        from repro.agreements.agreement import PathSegment

        scenario = AgreementScenario(
            agreement=figure1_agreement,
            segments=[
                SegmentTraffic(
                    segment=PathSegment(beneficiary=AS_D, partner=AS_E, target=AS_F),
                )
            ],
        )
        usage = [
            SegmentUsage(path=(AS_D, AS_E, AS_F), rerouted_volume=2.0, attracted_volume=1.0)
        ]
        realized = realized_scenario(scenario, usage)
        utilities = joint_utilities(realized, figure1_businesses)
        assert utilities[AS_D] != 0.0 or utilities[AS_E] != 0.0
