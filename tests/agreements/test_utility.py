"""Unit tests for agreement-utility computation (Eqs. 3–7)."""

import pytest

from repro.agreements import (
    AgreementScenario,
    SegmentTraffic,
    agreement_utility,
    flows_with_agreement,
    is_mutually_beneficial,
    joint_surplus,
    joint_utilities,
    utility_breakdown,
)
from repro.agreements.agreement import AgreementError, PathSegment
from repro.economics import ENDHOSTS
from repro.topology import AS_A, AS_B, AS_D, AS_E, AS_F, AS_H, AS_I


class TestFlowsWithAgreement:
    def test_beneficiary_flow_changes(self, figure1_scenario):
        after = flows_with_agreement(figure1_scenario, AS_D)
        before = figure1_scenario.baseline_flows(AS_D)
        # D uses two segments via E with total volume (10+5+3) + (4+2) = 24,
        # and carries E's segment with volume 8+4+2 = 14.
        assert after.get(AS_E) == pytest.approx(before.get(AS_E) + 24.0 + 14.0)
        # Rerouted traffic (10 + 4) leaves the provider link; carried
        # traffic for E (14) enters it.
        assert after.get(AS_A) == pytest.approx(before.get(AS_A) - 14.0 + 14.0)
        # Newly attracted traffic shows up on the customer links.
        assert after.get(AS_H) == pytest.approx(before.get(AS_H) + 5.0)
        assert after.get(ENDHOSTS) == pytest.approx(before.get(ENDHOSTS) + 5.0)

    def test_partner_flow_changes(self, figure1_scenario):
        after = flows_with_agreement(figure1_scenario, AS_E)
        before = figure1_scenario.baseline_flows(AS_E)
        # E uses one segment via D with volume 14 and carries D's two
        # segments with volumes 18 (towards B) and 6 (towards F).
        assert after.get(AS_D) == pytest.approx(before.get(AS_D) + 14.0 + 24.0)
        assert after.get(AS_B) == pytest.approx(before.get(AS_B) - 8.0 + 18.0)
        assert after.get(AS_F) == pytest.approx(before.get(AS_F) + 6.0)
        assert after.get(AS_I) == pytest.approx(before.get(AS_I) + 2.0)

    def test_total_flow_grows_for_the_carrying_party(self, figure1_scenario):
        before = figure1_scenario.baseline_flows(AS_E).total_flow()
        after = flows_with_agreement(figure1_scenario, AS_E).total_flow()
        assert after > before

    def test_non_party_raises(self, figure1_scenario):
        with pytest.raises(AgreementError):
            flows_with_agreement(figure1_scenario, AS_A)

    def test_baseline_unchanged(self, figure1_scenario):
        baseline_copy = figure1_scenario.baseline_flows(AS_D).as_dict()
        flows_with_agreement(figure1_scenario, AS_D)
        assert figure1_scenario.baseline_flows(AS_D).as_dict() == baseline_copy


class TestAgreementUtility:
    def test_breakdown_matches_utility(self, figure1_scenario, figure1_businesses):
        breakdown = utility_breakdown(figure1_scenario, AS_D, figure1_businesses[AS_D])
        assert breakdown.utility == pytest.approx(
            breakdown.revenue_change - breakdown.cost_change
        )
        assert breakdown.utility == pytest.approx(
            agreement_utility(figure1_scenario, AS_D, figure1_businesses[AS_D])
        )

    def test_d_benefits_and_e_loses_in_raw_scenario(
        self, figure1_scenario, figure1_businesses
    ):
        """The fixture models the asymmetric case discussed in §III-B2."""
        utilities = joint_utilities(figure1_scenario, figure1_businesses)
        assert utilities[AS_D] > 0.0
        assert utilities[AS_E] < 0.0

    def test_joint_surplus_positive(self, figure1_scenario, figure1_businesses):
        assert joint_surplus(figure1_scenario, figure1_businesses) > 0.0

    def test_not_mutually_beneficial_without_compensation(
        self, figure1_scenario, figure1_businesses
    ):
        assert not is_mutually_beneficial(figure1_scenario, figure1_businesses)

    def test_wrong_business_model_rejected(self, figure1_scenario, figure1_businesses):
        with pytest.raises(AgreementError):
            agreement_utility(figure1_scenario, AS_D, figure1_businesses[AS_E])

    def test_missing_business_model_rejected(self, figure1_scenario, figure1_businesses):
        with pytest.raises(AgreementError):
            joint_utilities(figure1_scenario, {AS_D: figure1_businesses[AS_D]})

    def test_empty_scenario_has_zero_utility(self, figure1_agreement, figure1_businesses):
        scenario = AgreementScenario(agreement=figure1_agreement)
        utilities = joint_utilities(scenario, figure1_businesses)
        assert utilities[AS_D] == pytest.approx(0.0)
        assert utilities[AS_E] == pytest.approx(0.0)

    def test_more_offloading_increases_beneficiary_utility(
        self, figure1_agreement, figure1_businesses
    ):
        """More rerouted provider traffic means more savings for the beneficiary."""
        def scenario_with_reroute(volume: float) -> AgreementScenario:
            from repro.economics import FlowVector

            return AgreementScenario(
                agreement=figure1_agreement,
                segments=[
                    SegmentTraffic(
                        segment=PathSegment(beneficiary=AS_D, partner=AS_E, target=AS_B),
                        rerouted={AS_A: volume},
                    )
                ],
                baseline={AS_D: FlowVector({AS_A: 50.0}), AS_E: FlowVector()},
            )

        small = agreement_utility(scenario_with_reroute(5.0), AS_D, figure1_businesses[AS_D])
        large = agreement_utility(scenario_with_reroute(20.0), AS_D, figure1_businesses[AS_D])
        assert large > small

    def test_more_carried_traffic_decreases_partner_utility(
        self, figure1_agreement, figure1_businesses
    ):
        """Eq. 7: the more flow the partner must haul to its provider, the worse."""
        from repro.economics import FlowVector

        def scenario_with_carried(volume: float) -> AgreementScenario:
            return AgreementScenario(
                agreement=figure1_agreement,
                segments=[
                    SegmentTraffic(
                        segment=PathSegment(beneficiary=AS_D, partner=AS_E, target=AS_B),
                        rerouted={AS_A: volume},
                    )
                ],
                baseline={AS_D: FlowVector({AS_A: 50.0}), AS_E: FlowVector()},
            )

        small = agreement_utility(scenario_with_carried(5.0), AS_E, figure1_businesses[AS_E])
        large = agreement_utility(scenario_with_carried(20.0), AS_E, figure1_businesses[AS_E])
        assert large < small
        assert large < 0.0
