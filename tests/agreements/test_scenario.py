"""Unit tests for agreement traffic scenarios."""

import pytest

from repro.agreements import AgreementScenario, SegmentTraffic
from repro.agreements.agreement import AgreementError, PathSegment
from repro.economics import ENDHOSTS
from repro.topology import AS_A, AS_B, AS_D, AS_E, AS_H


class TestSegmentTraffic:
    @pytest.fixture()
    def segment(self):
        return PathSegment(beneficiary=AS_D, partner=AS_E, target=AS_B)

    def test_volumes(self, segment):
        traffic = SegmentTraffic(
            segment=segment,
            rerouted={AS_A: 10.0, None: 2.0},
            attracted={ENDHOSTS: 5.0, AS_H: 3.0},
        )
        assert traffic.rerouted_volume == 12.0
        assert traffic.attracted_volume == 8.0
        assert traffic.total_volume == 20.0

    def test_negative_volumes_rejected(self, segment):
        with pytest.raises(ValueError):
            SegmentTraffic(segment=segment, rerouted={AS_A: -1.0})
        with pytest.raises(ValueError):
            SegmentTraffic(segment=segment, attracted={AS_H: -1.0})
        with pytest.raises(ValueError):
            SegmentTraffic(segment=segment, attracted_limits={AS_H: -1.0})

    def test_attracted_limit_defaults_to_attracted_volume(self, segment):
        traffic = SegmentTraffic(segment=segment, attracted={AS_H: 3.0})
        assert traffic.attracted_limit(AS_H) == 3.0
        assert traffic.attracted_limit(ENDHOSTS) == 0.0

    def test_attracted_limit_explicit(self, segment):
        traffic = SegmentTraffic(
            segment=segment, attracted={AS_H: 3.0}, attracted_limits={AS_H: 10.0}
        )
        assert traffic.attracted_limit(AS_H) == 10.0

    def test_scaled(self, segment):
        traffic = SegmentTraffic(
            segment=segment, rerouted={AS_A: 10.0}, attracted={AS_H: 4.0}
        )
        scaled = traffic.scaled(rerouted_factor=0.5, attracted_factor=0.25)
        assert scaled.rerouted_volume == 5.0
        assert scaled.attracted_volume == 1.0
        # The original is unchanged.
        assert traffic.rerouted_volume == 10.0

    def test_scaled_negative_factor_rejected(self, segment):
        traffic = SegmentTraffic(segment=segment, rerouted={AS_A: 10.0})
        with pytest.raises(ValueError):
            traffic.scaled(rerouted_factor=-1.0)


class TestAgreementScenario:
    def test_segments_must_belong_to_agreement(self, figure1_agreement):
        foreign = SegmentTraffic(
            segment=PathSegment(beneficiary=AS_D, partner=AS_E, target=AS_H),
            rerouted={AS_A: 1.0},
        )
        with pytest.raises(AgreementError):
            AgreementScenario(agreement=figure1_agreement, segments=[foreign])

    def test_baseline_defaults_to_empty_vectors(self, figure1_agreement):
        scenario = AgreementScenario(agreement=figure1_agreement)
        assert scenario.baseline_flows(AS_D).total_flow() == 0.0
        assert scenario.baseline_flows(AS_E).total_flow() == 0.0

    def test_baseline_of_non_party_raises(self, figure1_scenario):
        with pytest.raises(AgreementError):
            figure1_scenario.baseline_flows(AS_A)

    def test_rerouted_traffic_must_exist_in_baseline(self, figure1_agreement):
        """A scenario cannot claim to reroute more provider traffic than the
        baseline actually carries."""
        from repro.economics import FlowVector

        segment = SegmentTraffic(
            segment=PathSegment(beneficiary=AS_D, partner=AS_E, target=AS_B),
            rerouted={AS_A: 50.0},
        )
        with pytest.raises(AgreementError):
            AgreementScenario(
                agreement=figure1_agreement,
                segments=[segment],
                baseline={AS_D: FlowVector({AS_A: 10.0})},
            )

    def test_rerouted_traffic_from_peers_is_not_checked(self, figure1_agreement):
        """Rerouted volume attributed to no particular provider (previously
        carried over a settlement-free peer) needs no baseline entry."""
        segment = SegmentTraffic(
            segment=PathSegment(beneficiary=AS_D, partner=AS_E, target=AS_B),
            rerouted={None: 50.0},
        )
        AgreementScenario(agreement=figure1_agreement, segments=[segment])

    def test_segments_used_and_carried(self, figure1_scenario):
        used_by_d = figure1_scenario.segments_used_by(AS_D)
        carried_by_d = figure1_scenario.segments_carried_by(AS_D)
        assert {t.segment.path for t in used_by_d} == {
            (AS_D, AS_E, AS_B),
            (AS_D, AS_E, 6),
        }
        assert {t.segment.path for t in carried_by_d} == {(AS_E, AS_D, AS_A)}

    def test_segment_traffic_lookup(self, figure1_scenario):
        traffic = figure1_scenario.segment_traffic((AS_E, AS_D, AS_A))
        assert traffic.rerouted_volume == 8.0
        with pytest.raises(KeyError):
            figure1_scenario.segment_traffic((AS_D, AS_E, AS_A))

    def test_with_segments_copies_baseline(self, figure1_scenario):
        reduced = figure1_scenario.with_segments(list(figure1_scenario.segments[:1]))
        assert len(reduced.segments) == 1
        reduced.baseline_flows(AS_D).add(AS_A, 100.0)
        assert figure1_scenario.baseline_flows(AS_D).get(AS_A) == 30.0
