"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.topology import load_as_rel


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_topology_arguments(self):
        args = build_parser().parse_args(
            ["topology", "out.txt", "--tier1", "3", "--seed", "7"]
        )
        assert args.command == "topology"
        assert args.output == "out.txt"
        assert args.tier1 == 3
        assert args.seed == 7

    def test_experiments_full_flag(self):
        args = build_parser().parse_args(["experiments", "--full"])
        assert args.full
        assert args.seed is None

    def test_experiments_seed_flag(self):
        args = build_parser().parse_args(["experiments", "--seed", "5"])
        assert args.seed == 5

    def test_experiments_jobs_flag(self):
        args = build_parser().parse_args(["experiments", "--jobs", "4"])
        assert args.jobs == 4
        assert build_parser().parse_args(["experiments"]).jobs == 1

    def test_experiments_trials_flag(self):
        args = build_parser().parse_args(["experiments", "--trials", "200"])
        assert args.trials == 200
        assert build_parser().parse_args(["experiments"]).trials is None

    def test_experiments_non_positive_trials_is_a_clean_error(self, capsys):
        from repro.cli import main

        assert main(["experiments", "--trials", "0"]) == 2
        assert "--trials must be a positive integer" in capsys.readouterr().err

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.scenario == "failure-churn"
        assert args.seed is None
        assert args.duration is None
        assert args.trace_out is None

    def test_simulate_arguments(self):
        args = build_parser().parse_args(
            [
                "simulate",
                "--scenario",
                "marketplace",
                "--seed",
                "9",
                "--duration",
                "48",
                "--trace-out",
                "trace.jsonl",
            ]
        )
        assert args.scenario == "marketplace"
        assert args.seed == 9
        assert args.duration == 48.0
        assert args.trace_out == "trace.jsonl"

    def test_simulate_rejects_unknown_scenario(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--scenario", "nope"])


class TestTopologyCommand:
    def test_writes_a_loadable_as_rel_file(self, tmp_path, capsys):
        output = tmp_path / "topo.as-rel.txt"
        code = main(
            [
                "topology",
                str(output),
                "--tier1",
                "3",
                "--tier2",
                "6",
                "--tier3",
                "15",
                "--stubs",
                "40",
                "--seed",
                "3",
            ]
        )
        assert code == 0
        graph = load_as_rel(output)
        assert len(graph) == 3 + 6 + 15 + 40
        assert "wrote" in capsys.readouterr().out


class TestSimulateCommand:
    def test_failure_churn_prints_availability_summary(self, capsys):
        code = main(["simulate", "--duration", "6", "--seed", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "scenario: failure-churn" in out
        assert "mean path availability  BGP:" in out
        assert "mean path availability  PAN:" in out
        assert "PAN >= BGP availability: True" in out

    def test_trace_out_writes_reproducible_jsonl(self, tmp_path, capsys):
        first = tmp_path / "a.jsonl"
        second = tmp_path / "b.jsonl"
        for target in (first, second):
            code = main(
                [
                    "simulate",
                    "--scenario",
                    "flash-crowd",
                    "--seed",
                    "4",
                    "--duration",
                    "30",
                    "--trace-out",
                    str(target),
                ]
            )
            assert code == 0
        assert "trace written" in capsys.readouterr().out
        assert first.read_bytes() == second.read_bytes()
        assert first.read_text().startswith('{"')

    def test_negative_duration_is_a_clean_error(self, capsys):
        code = main(["simulate", "--duration", "-5"])
        assert code == 2
        assert "--duration must be a non-negative finite" in capsys.readouterr().err

    @pytest.mark.parametrize("duration", ["nan", "inf"])
    def test_non_finite_duration_is_a_clean_error(self, duration, capsys):
        code = main(["simulate", "--duration", duration])
        assert code == 2
        assert "--duration must be a non-negative finite" in capsys.readouterr().err

    def test_negative_seed_is_a_clean_error(self, capsys):
        assert main(["simulate", "--seed", "-1"]) == 2
        assert "--seed must be non-negative" in capsys.readouterr().err
        assert main(["experiments", "--seed", "-1"]) == 2
        assert "--seed must be non-negative" in capsys.readouterr().err

    def test_non_positive_jobs_is_a_clean_error(self, capsys):
        assert main(["experiments", "--jobs", "0"]) == 2
        assert "--jobs must be a positive integer" in capsys.readouterr().err

    def test_unwritable_trace_path_is_a_clean_error(self, tmp_path, capsys):
        code = main(
            [
                "simulate",
                "--scenario",
                "flash-crowd",
                "--duration",
                "1",
                "--trace-out",
                str(tmp_path / "missing-dir" / "t.jsonl"),
            ]
        )
        assert code == 1
        captured = capsys.readouterr()
        assert "cannot write trace" in captured.err
        # The historical ordering: the run's summary still prints before
        # the trace-write failure is reported.
        assert "scenario: flash-crowd" in captured.out


class TestDiversityCommand:
    def test_analysis_on_written_topology(self, tmp_path, capsys):
        output = tmp_path / "topo.as-rel.txt"
        main(
            [
                "topology",
                str(output),
                "--tier1",
                "3",
                "--tier2",
                "6",
                "--tier3",
                "15",
                "--stubs",
                "40",
                "--seed",
                "3",
            ]
        )
        capsys.readouterr()
        code = main(
            ["diversity", "--topology", str(output), "--sample-size", "15", "--seed", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "GRC" in out
        assert "additional paths per AS" in out


class TestNegotiateCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["negotiate"])
        assert args.distribution == "u1"
        assert args.num_choices == 50
        assert args.trials == 40
        assert args.seed == 7

    def test_text_report(self, capsys):
        assert (
            main(["negotiate", "--num-choices", "10", "--trials", "5", "--seed", "3"])
            == 0
        )
        out = capsys.readouterr().out
        assert "== negotiate: u1 distribution, W=10, 5 trials (seed 3) ==" in out
        assert "price of dishonesty:" in out

    def test_json_envelope(self, capsys):
        import json as json_module

        assert (
            main(
                [
                    "negotiate",
                    "--num-choices",
                    "10",
                    "--trials",
                    "5",
                    "--seed",
                    "3",
                    "--format",
                    "json",
                ]
            )
            == 0
        )
        document = json_module.loads(capsys.readouterr().out)
        assert document["kind"] == "negotiate_result"
        assert document["num_choices"] == 10

    def test_invalid_trials_is_exit_2(self, capsys):
        assert main(["negotiate", "--trials", "0"]) == 2
        assert "--trials must be a positive integer" in capsys.readouterr().err


class TestServeCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8000
        assert args.max_batch == 32
        assert args.coalesce_window_ms == 5.0
        assert args.cache_entries == 256
        assert args.request_log is None
        assert args.session_cache_limit is None

    def test_flags_parse(self):
        args = build_parser().parse_args(
            [
                "serve",
                "--port",
                "0",
                "--coalesce-window-ms",
                "12.5",
                "--max-batch",
                "4",
                "--cache-entries",
                "0",
                "--request-log",
                "req.jsonl",
                "--session-cache-limit",
                "16",
            ]
        )
        assert args.port == 0
        assert args.coalesce_window_ms == 12.5
        assert args.max_batch == 4
        assert args.cache_entries == 0
        assert args.request_log == "req.jsonl"
        assert args.session_cache_limit == 16

    def test_invalid_config_is_a_clean_exit_2(self, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["serve", "--max-batch", "0", "--port", "0"]) == 2
        assert "--max-batch must be a positive integer" in capsys.readouterr().err
