"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.topology import load_as_rel


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_topology_arguments(self):
        args = build_parser().parse_args(
            ["topology", "out.txt", "--tier1", "3", "--seed", "7"]
        )
        assert args.command == "topology"
        assert args.output == "out.txt"
        assert args.tier1 == 3
        assert args.seed == 7

    def test_experiments_full_flag(self):
        args = build_parser().parse_args(["experiments", "--full"])
        assert args.full


class TestTopologyCommand:
    def test_writes_a_loadable_as_rel_file(self, tmp_path, capsys):
        output = tmp_path / "topo.as-rel.txt"
        code = main(
            [
                "topology",
                str(output),
                "--tier1",
                "3",
                "--tier2",
                "6",
                "--tier3",
                "15",
                "--stubs",
                "40",
                "--seed",
                "3",
            ]
        )
        assert code == 0
        graph = load_as_rel(output)
        assert len(graph) == 3 + 6 + 15 + 40
        assert "wrote" in capsys.readouterr().out


class TestDiversityCommand:
    def test_analysis_on_written_topology(self, tmp_path, capsys):
        output = tmp_path / "topo.as-rel.txt"
        main(
            [
                "topology",
                str(output),
                "--tier1",
                "3",
                "--tier2",
                "6",
                "--tier3",
                "15",
                "--stubs",
                "40",
                "--seed",
                "3",
            ]
        )
        capsys.readouterr()
        code = main(
            ["diversity", "--topology", str(output), "--sample-size", "15", "--seed", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "GRC" in out
        assert "additional paths per AS" in out
