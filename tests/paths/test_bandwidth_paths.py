"""Unit tests for the bandwidth analysis (Fig. 6)."""

import pytest

from repro.agreements import enumerate_mutuality_agreements
from repro.paths.bandwidth import (
    PairBandwidthRecord,
    analyze_bandwidth,
    path_bandwidths,
)
from repro.paths.grc import iter_grc_length3_paths
from repro.topology import degree_gravity_capacities, figure1_topology


class TestPairRecord:
    def test_counting_against_thresholds(self):
        record = PairBandwidthRecord(
            source=1,
            destination=2,
            grc_min=10.0,
            grc_median=20.0,
            grc_max=30.0,
            ma_bandwidths=(5.0, 15.0, 25.0, 60.0),
        )
        assert record.paths_above_grc_max == 1
        assert record.paths_above_grc_median == 2
        assert record.paths_above_grc_min == 3
        assert record.best_ma_bandwidth == 60.0
        assert record.relative_increase == pytest.approx(1.0)

    def test_no_increase_when_ma_paths_are_worse(self):
        record = PairBandwidthRecord(
            source=1,
            destination=2,
            grc_min=10.0,
            grc_median=20.0,
            grc_max=30.0,
            ma_bandwidths=(25.0,),
        )
        assert record.relative_increase is None

    def test_no_ma_paths(self):
        record = PairBandwidthRecord(
            source=1,
            destination=2,
            grc_min=10.0,
            grc_median=10.0,
            grc_max=10.0,
            ma_bandwidths=(),
        )
        assert record.best_ma_bandwidth == 0.0
        assert record.relative_increase is None


class TestPathBandwidths:
    def test_grouping_by_pair(self):
        graph = figure1_topology()
        capacities = degree_gravity_capacities(graph)
        paths = set(iter_grc_length3_paths(graph, 8))
        grouped = path_bandwidths(paths, capacities)
        assert sum(len(v) for v in grouped.values()) == len(paths)
        for values in grouped.values():
            assert all(v > 0.0 for v in values)


class TestAnalyzeBandwidth:
    @pytest.fixture(scope="class")
    def analysis(self, medium_topology):
        capacities = degree_gravity_capacities(medium_topology.graph)
        agreements = list(enumerate_mutuality_agreements(medium_topology.graph))
        return analyze_bandwidth(
            medium_topology.graph,
            capacities,
            agreements=agreements,
            sample_size=25,
            seed=4,
        )

    def test_records_have_consistent_thresholds(self, analysis):
        assert analysis.records
        for record in analysis.records:
            assert record.grc_min <= record.grc_median <= record.grc_max

    def test_condition_counts_are_monotone(self, analysis):
        """A path above the GRC maximum is also above median and minimum."""
        for record in analysis.records:
            assert (
                record.paths_above_grc_max
                <= record.paths_above_grc_median
                <= record.paths_above_grc_min
            )

    def test_cdf_ordering_between_conditions(self, analysis):
        above_max = analysis.fraction_of_pairs_improving("max", 1)
        above_min = analysis.fraction_of_pairs_improving("min", 1)
        assert above_max <= above_min

    def test_some_pairs_gain_bandwidth(self, analysis):
        """The paper reports ≈35% of pairs beating the GRC maximum; the
        smaller synthetic test topology reaches a lower but clear share."""
        assert analysis.fraction_of_pairs_improving("max", 1) > 0.1

    def test_increase_cdf_is_positive(self, analysis):
        cdf = analysis.increase_cdf()
        if cdf.count:
            assert cdf.minimum > 0.0

    def test_empty_result_fraction_is_zero(self):
        from repro.paths.bandwidth import BandwidthResult

        assert BandwidthResult().fraction_of_pairs_improving("max", 1) == 0.0
