"""Unit tests for the geodistance analysis (Fig. 5)."""

import pytest

from repro.agreements import enumerate_mutuality_agreements
from repro.paths.geodistance import (
    PairGeodistanceRecord,
    analyze_geodistance,
    path_geodistances,
)
from repro.paths.grc import iter_grc_length3_paths
from repro.topology import figure1_topology
from repro.topology.geography import SyntheticGeographyGenerator


class TestPairRecord:
    def test_counting_against_thresholds(self):
        record = PairGeodistanceRecord(
            source=1,
            destination=2,
            grc_min=100.0,
            grc_median=200.0,
            grc_max=300.0,
            ma_distances=(50.0, 150.0, 250.0, 400.0),
        )
        assert record.paths_below_grc_min == 1
        assert record.paths_below_grc_median == 2
        assert record.paths_below_grc_max == 3
        assert record.best_ma_distance == 50.0
        assert record.relative_reduction == pytest.approx(0.5)

    def test_no_reduction_when_ma_paths_are_worse(self):
        record = PairGeodistanceRecord(
            source=1,
            destination=2,
            grc_min=100.0,
            grc_median=200.0,
            grc_max=300.0,
            ma_distances=(150.0,),
        )
        assert record.relative_reduction is None

    def test_no_ma_paths(self):
        record = PairGeodistanceRecord(
            source=1,
            destination=2,
            grc_min=100.0,
            grc_median=100.0,
            grc_max=100.0,
            ma_distances=(),
        )
        assert record.paths_below_grc_min == 0
        assert record.best_ma_distance == float("inf")
        assert record.relative_reduction is None


class TestPathGeodistances:
    def test_grouping_by_pair(self):
        graph = figure1_topology()
        embedding = SyntheticGeographyGenerator(seed=2).embed(graph)
        paths = set(iter_grc_length3_paths(graph, 8))  # from AS H
        grouped = path_geodistances(paths, embedding)
        assert all(key[0] == 8 for key in grouped)
        assert sum(len(v) for v in grouped.values()) == len(paths)
        for distances in grouped.values():
            assert all(d > 0.0 for d in distances)


class TestAnalyzeGeodistance:
    @pytest.fixture(scope="class")
    def analysis(self, medium_topology):
        embedding = SyntheticGeographyGenerator(seed=3).embed(medium_topology.graph)
        agreements = list(enumerate_mutuality_agreements(medium_topology.graph))
        return analyze_geodistance(
            medium_topology.graph,
            embedding,
            agreements=agreements,
            sample_size=25,
            seed=4,
        )

    def test_records_have_consistent_thresholds(self, analysis):
        assert analysis.records
        for record in analysis.records:
            assert record.grc_min <= record.grc_median <= record.grc_max

    def test_condition_counts_are_monotone(self, analysis):
        """A path below the GRC minimum is also below median and maximum."""
        for record in analysis.records:
            assert (
                record.paths_below_grc_min
                <= record.paths_below_grc_median
                <= record.paths_below_grc_max
            )

    def test_cdf_ordering_between_conditions(self, analysis):
        at_least_one_min = analysis.fraction_of_pairs_improving("min", 1)
        at_least_one_max = analysis.fraction_of_pairs_improving("max", 1)
        assert at_least_one_min <= at_least_one_max

    def test_some_pairs_improve(self, analysis):
        """MAs shorten the best path for a nontrivial share of AS pairs.

        The paper reports ≈50% on the CAIDA topology; the smaller synthetic
        topology used in tests reaches a lower but still substantial share.
        """
        assert analysis.fraction_of_pairs_improving("min", 1) > 0.2

    def test_reduction_cdf_values_in_unit_interval(self, analysis):
        cdf = analysis.reduction_cdf()
        if cdf.count:
            assert cdf.minimum >= 0.0
            assert cdf.maximum <= 1.0

    def test_count_cdf_sizes_match_record_count(self, analysis):
        assert analysis.count_cdf("min").count == len(analysis.records)

    def test_empty_result_fraction_is_zero(self):
        from repro.paths.geodistance import GeodistanceResult

        assert GeodistanceResult().fraction_of_pairs_improving("min", 1) == 0.0
