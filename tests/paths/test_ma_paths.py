"""Unit tests for MA-created paths and the per-AS path index."""

import pytest

from repro.agreements import enumerate_mutuality_agreements, figure1_mutuality_agreement
from repro.paths.grc import grc_length3_paths
from repro.paths.ma_paths import (
    agreement_paths,
    build_ma_path_index,
    new_ma_paths,
)
from repro.topology import AS_A, AS_B, AS_C, AS_D, AS_E, AS_F, AS_G, figure1_topology


@pytest.fixture()
def graph():
    return figure1_topology()


@pytest.fixture()
def index(graph):
    return build_ma_path_index(list(enumerate_mutuality_agreements(graph)))


class TestAgreementPaths:
    def test_figure1_agreement_paths(self, graph):
        agreement = figure1_mutuality_agreement(graph)
        gained = agreement_paths(agreement)
        assert gained[AS_D] == {(AS_D, AS_E, AS_B), (AS_D, AS_E, AS_F)}
        assert gained[AS_E] == {(AS_E, AS_D, AS_A)}
        # Indirect gainers: the targets of the offered segments.
        assert gained[AS_B] == {(AS_B, AS_E, AS_D)}
        assert gained[AS_F] == {(AS_F, AS_E, AS_D)}
        assert gained[AS_A] == {(AS_A, AS_D, AS_E)}


class TestMAPathIndex:
    def test_direct_paths_of_d(self, index, graph):
        direct = index.direct_paths(AS_D)
        # D concludes MAs with its peers C and E.
        assert (AS_D, AS_E, AS_B) in direct
        assert (AS_D, AS_E, AS_F) in direct
        assert (AS_D, AS_C, AS_A) in direct
        assert (AS_D, AS_C, AS_G) not in direct  # customers are never MA targets

    def test_indirect_paths_of_b(self, index):
        indirect = index.indirect_paths(AS_B)
        assert (AS_B, AS_E, AS_D) in indirect
        assert (AS_B, AS_E, AS_F) in indirect

    def test_all_paths_is_union(self, index):
        for asn in (AS_A, AS_B, AS_C, AS_D, AS_E, AS_F):
            assert index.all_paths(asn) == index.direct_paths(asn) | index.indirect_paths(asn)

    def test_ma_paths_are_not_grc_conforming(self, index, graph):
        """Every directly gained MA path violates the GRC — that is what
        makes them additional."""
        for asn in graph:
            grc = grc_length3_paths(graph, asn)
            assert not (index.direct_paths(asn) & grc)

    def test_top_n_zero_is_empty(self, index, graph):
        assert index.top_n_paths(AS_D, 0, graph) == frozenset()

    def test_top_n_negative_rejected(self, index, graph):
        with pytest.raises(ValueError):
            index.top_n_paths(AS_D, -1, graph)

    def test_top_n_monotone_in_n(self, index, graph):
        top1 = index.top_n_paths(AS_D, 1, graph)
        top2 = index.top_n_paths(AS_D, 2, graph)
        top50 = index.top_n_paths(AS_D, 50, graph)
        assert top1 <= top2 <= top50
        assert top50 == index.direct_paths(AS_D)

    def test_top_1_picks_most_productive_agreement(self, index, graph):
        top1 = index.top_n_paths(AS_D, 1, graph)
        # The D–E agreement yields two paths for D, the D–C agreement only one.
        assert top1 == {(AS_D, AS_E, AS_B), (AS_D, AS_E, AS_F)}

    def test_new_ma_paths_excludes_grc(self, index, graph):
        for asn in (AS_D, AS_E, AS_C):
            new = new_ma_paths(graph, index, asn)
            assert not (new & grc_length3_paths(graph, asn))
            assert new == index.all_paths(asn) - grc_length3_paths(graph, asn)

    def test_new_ma_paths_directly_gained_only(self, index, graph):
        direct_only = new_ma_paths(graph, index, AS_B, directly_gained_only=True)
        everything = new_ma_paths(graph, index, AS_B)
        assert direct_only <= everything

    def test_as_without_agreements_has_no_direct_paths(self, index):
        from repro.topology import AS_H

        assert index.direct_paths(AS_H) == frozenset()
