"""Unit tests for the sharded all-sources GRC pass.

The determinism contract under test: for the same topology, the pass
produces byte-identical per-source CSV output no matter how it is
executed — sequential, blocked, or sharded across worker processes —
because shards are merged in fixed range order.
"""

import numpy as np
import pytest

from repro.core import PathEngine, compile_as_rel_lines
from repro.core.artifacts import ArtifactStore
from repro.paths.grc_all import GrcAllPass, plan_ranges, run_grc_all
from repro.topology import generate_topology
from repro.topology.caida import dump_as_rel_lines


@pytest.fixture(scope="module")
def compiled():
    graph = generate_topology(
        num_tier1=3, num_tier2=8, num_tier3=25, num_stubs=70, seed=2021
    ).graph
    # Detached view: carries its fingerprint independent of graph lifetime.
    return compile_as_rel_lines(dump_as_rel_lines(graph))


class TestPlanRanges:
    @pytest.mark.parametrize("n,shards", [(10, 3), (7, 7), (100, 8), (3, 10), (1, 1)])
    def test_ranges_partition_the_sources_in_order(self, n, shards):
        ranges = plan_ranges(n, shards)
        assert ranges[0][0] == 0
        assert ranges[-1][1] == n
        for (_, prev_hi), (lo, hi) in zip(ranges, ranges[1:]):
            assert lo == prev_hi
            assert lo < hi
        assert len(ranges) == min(n, shards)

    def test_ranges_are_balanced(self):
        sizes = [hi - lo for lo, hi in plan_ranges(100, 7)]
        assert max(sizes) - min(sizes) <= 1

    def test_empty_topology_yields_no_ranges(self):
        assert plan_ranges(0, 4) == []

    def test_invalid_shards_rejected(self):
        with pytest.raises(ValueError, match="shards must be a positive integer"):
            plan_ranges(10, 0)


class TestSequentialPass:
    def test_matches_path_engine_by_source(self, compiled):
        grc_pass = run_grc_all(compiled)
        engine = PathEngine(compiled)
        counts = engine.counts_by_source()
        destination_counts = engine.destination_counts_by_source()
        for asn, paths, destinations in zip(
            grc_pass.asns, grc_pass.path_counts, grc_pass.destination_counts
        ):
            assert counts[int(asn)] == int(paths)
            assert destination_counts[int(asn)] == int(destinations)

    def test_summary_fields(self, compiled):
        summary = run_grc_all(compiled).summary()
        assert summary["num_ases"] == compiled.n
        assert summary["total_paths"] > 0
        assert summary["max_paths"] >= summary["mean_paths"]
        assert summary["max_destinations"] >= summary["mean_destinations"]

    def test_csv_layout(self, compiled, tmp_path):
        grc_pass = run_grc_all(compiled)
        lines = grc_pass.csv_lines()
        assert lines[0] == "asn,paths,destinations"
        assert len(lines) == compiled.n + 1
        out = tmp_path / "grc.csv"
        grc_pass.write_csv(out)
        assert out.read_text(encoding="utf-8") == "\n".join(lines) + "\n"


class TestShardedPass:
    def test_sharded_run_is_byte_identical_to_sequential(self, compiled, tmp_path):
        sequential = run_grc_all(compiled)
        artifact = ArtifactStore(tmp_path).ensure_compiled(compiled)
        sharded = run_grc_all(compiled, jobs=2, artifact_path=artifact)
        assert sharded.csv_lines() == sequential.csv_lines()
        assert sharded.fingerprint == sequential.fingerprint

    def test_more_shards_than_jobs_still_identical(self, compiled, tmp_path):
        sequential = run_grc_all(compiled)
        artifact = ArtifactStore(tmp_path).ensure_compiled(compiled)
        sharded = run_grc_all(compiled, jobs=2, shards=5, artifact_path=artifact)
        assert sharded.csv_lines() == sequential.csv_lines()

    def test_jobs_above_one_requires_artifact(self, compiled):
        with pytest.raises(ValueError, match="requires an artifact_path"):
            run_grc_all(compiled, jobs=2)

    def test_invalid_jobs_rejected(self, compiled):
        with pytest.raises(ValueError, match="jobs must be a positive integer"):
            run_grc_all(compiled, jobs=0)


class TestEmptyTopology:
    def test_empty_pass_is_well_formed(self):
        grc_pass = run_grc_all(compile_as_rel_lines([]))
        assert isinstance(grc_pass, GrcAllPass)
        assert grc_pass.num_ases == 0
        assert grc_pass.total_paths == 0
        assert grc_pass.summary()["mean_paths"] == 0.0
        assert grc_pass.csv_lines() == ["asn,paths,destinations"]
        assert grc_pass.path_counts.dtype == np.int64
