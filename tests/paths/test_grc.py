"""Unit tests for GRC-conforming length-3 path enumeration."""

from repro.paths.grc import (
    count_grc_length3_paths,
    grc_length3_destinations,
    grc_length3_paths,
    grc_paths_between,
    is_grc_conforming_segment,
)
from repro.topology import (
    AS_A,
    AS_B,
    AS_C,
    AS_D,
    AS_E,
    AS_F,
    AS_H,
    AS_I,
    figure1_topology,
)


class TestSegmentConformance:
    def test_customer_on_either_side_is_conforming(self):
        graph = figure1_topology()
        assert is_grc_conforming_segment(graph, AS_A, AS_D, AS_H)  # H is D's customer
        assert is_grc_conforming_segment(graph, AS_H, AS_D, AS_E)

    def test_peer_to_provider_is_not_conforming(self):
        graph = figure1_topology()
        assert not is_grc_conforming_segment(graph, AS_E, AS_D, AS_A)

    def test_peer_to_peer_transit_is_not_conforming(self):
        graph = figure1_topology()
        assert not is_grc_conforming_segment(graph, AS_C, AS_D, AS_E)


class TestPathEnumeration:
    def test_paths_from_stub_as(self):
        graph = figure1_topology()
        paths = grc_length3_paths(graph, AS_H)
        # From H: H–D–X for every neighbor X of D except H (H is D's
        # customer, so D exports everything to H).
        expected = {
            (AS_H, AS_D, AS_A),
            (AS_H, AS_D, AS_C),
            (AS_H, AS_D, AS_E),
        }
        assert paths == expected

    def test_paths_from_transit_as(self):
        graph = figure1_topology()
        paths = grc_length3_paths(graph, AS_D)
        # Via provider A: everything A exports to its customer D, i.e. A's
        # customer C and also A's peer B (customer cones see all routes).
        assert (AS_D, AS_A, AS_C) in paths
        assert (AS_D, AS_A, AS_B) in paths
        # Via peer E: only E's customer I.
        assert (AS_D, AS_E, AS_I) in paths
        assert (AS_D, AS_E, AS_B) not in paths
        assert (AS_D, AS_E, AS_F) not in paths
        # Via customer H: H has no other neighbors, so nothing.
        assert all(path[1] != AS_H for path in paths)

    def test_paths_never_return_to_source(self):
        graph = figure1_topology()
        for source in graph:
            for path in grc_length3_paths(graph, source):
                assert path[2] != source
                assert path[0] == source

    def test_all_enumerated_paths_are_conforming(self):
        graph = figure1_topology()
        for source in graph:
            for path in grc_length3_paths(graph, source):
                assert is_grc_conforming_segment(graph, *path)

    def test_count_matches_enumeration(self):
        graph = figure1_topology()
        for source in graph:
            assert count_grc_length3_paths(graph, source) == len(
                grc_length3_paths(graph, source)
            )

    def test_destinations(self):
        graph = figure1_topology()
        destinations = grc_length3_destinations(graph, AS_H)
        assert destinations == {AS_A, AS_C, AS_E}

    def test_paths_between_pair_are_disjoint(self):
        """All length-3 paths between a fixed pair share only the endpoints."""
        graph = figure1_topology()
        for source in graph:
            for destination in grc_length3_destinations(graph, source):
                middles = [
                    path[1] for path in grc_paths_between(graph, source, destination)
                ]
                assert len(middles) == len(set(middles))

    def test_generated_topology_paths_are_conforming(self, small_topology):
        graph = small_topology.graph
        sample = sorted(graph.ases)[:20]
        for source in sample:
            for path in grc_length3_paths(graph, source):
                assert is_grc_conforming_segment(graph, *path)
