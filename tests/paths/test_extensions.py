"""Unit tests for extension-agreement path diversity (§III-B3)."""

import pytest

from repro.agreements import enumerate_mutuality_agreements, figure1_mutuality_agreement
from repro.paths.extensions import (
    analyze_extension_diversity,
    build_extension_path_index,
    enumerate_extension_agreements,
)
from repro.topology import AS_A, AS_C, AS_D, AS_E, AS_F, figure1_topology


@pytest.fixture()
def graph():
    return figure1_topology()


class TestEnumeration:
    def test_figure1_example_extension_present(self, graph):
        """The §III-B3 example: E can offer the segment EDA to its peer F."""
        base = [figure1_mutuality_agreement(graph)]
        extensions = enumerate_extension_agreements(graph, base)
        offered = {
            (extension.party_x, extension.party_y, offer.segment.path)
            for extension in extensions
            for offer in extension.segment_offers_x
        }
        assert (AS_E, AS_F, (AS_E, AS_D, AS_A)) in offered

    def test_peers_on_the_segment_are_skipped(self, graph):
        base = [figure1_mutuality_agreement(graph)]
        extensions = enumerate_extension_agreements(graph, base)
        for extension in extensions:
            for offer in extension.segment_offers_x:
                assert extension.party_y not in offer.segment.path

    def test_all_extensions_reference_base_agreements(self, graph):
        base = list(enumerate_mutuality_agreements(graph))
        extensions = enumerate_extension_agreements(graph, base)
        base_ids = {id(agreement) for agreement in base}
        for extension in extensions:
            assert extension.depends_on() <= base_ids


class TestPathIndex:
    def test_length4_paths_created(self, graph):
        base = [figure1_mutuality_agreement(graph)]
        extensions = enumerate_extension_agreements(graph, base)
        index = build_extension_path_index(extensions)
        assert (AS_F, AS_E, AS_D, AS_A) in index.paths_of(AS_F)

    def test_paths_have_four_distinct_ases(self, graph):
        base = list(enumerate_mutuality_agreements(graph))
        index = build_extension_path_index(
            enumerate_extension_agreements(graph, base)
        )
        for asn in graph:
            for path in index.paths_of(asn):
                assert len(path) == 4
                assert len(set(path)) == 4
                assert path[0] == asn

    def test_counts_match_paths(self, graph):
        base = list(enumerate_mutuality_agreements(graph))
        index = build_extension_path_index(
            enumerate_extension_agreements(graph, base)
        )
        for asn in graph:
            assert index.count(asn) == len(index.paths_of(asn))


class TestAnalysis:
    def test_summary_structure(self, graph):
        base = list(enumerate_mutuality_agreements(graph))
        sample = tuple(sorted(graph.ases))
        summary = analyze_extension_diversity(graph, base, sample)
        assert summary["num_extension_agreements"] > 0
        assert summary["max"] >= summary["mean"] >= 0.0

    def test_extensions_add_paths_on_generated_topology(self, small_topology):
        graph = small_topology.graph
        base = list(enumerate_mutuality_agreements(graph))
        sample = tuple(sorted(graph.ases))[:40]
        summary = analyze_extension_diversity(graph, base, sample)
        assert summary["mean"] > 0.0

    def test_cdf_is_over_the_sample(self, graph):
        base = list(enumerate_mutuality_agreements(graph))
        index = build_extension_path_index(
            enumerate_extension_agreements(graph, base)
        )
        sample = (AS_C, AS_D, AS_E, AS_F)
        cdf = index.cdf(sample)
        assert cdf.count == len(sample)
