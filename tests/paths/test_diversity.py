"""Unit tests for the path/destination diversity analysis (Figs. 3 and 4)."""

import pytest

from repro.agreements import enumerate_mutuality_agreements
from repro.paths.diversity import (
    analyze_as,
    analyze_path_diversity,
    sample_ases,
)
from repro.paths.grc import grc_length3_destinations, grc_length3_paths
from repro.paths.ma_paths import build_ma_path_index
from repro.topology import AS_D, AS_H, figure1_topology


@pytest.fixture(scope="module")
def figure1_index():
    graph = figure1_topology()
    return build_ma_path_index(list(enumerate_mutuality_agreements(graph)))


class TestSampleAses:
    def test_sample_size_respected(self, small_topology):
        sample = sample_ases(small_topology.graph, 10, seed=1)
        assert len(sample) == 10
        assert set(sample) <= small_topology.graph.ases

    def test_sample_larger_than_population_returns_all(self):
        graph = figure1_topology()
        assert len(sample_ases(graph, 100)) == len(graph)

    def test_sample_is_deterministic(self, small_topology):
        assert sample_ases(small_topology.graph, 10, seed=3) == sample_ases(
            small_topology.graph, 10, seed=3
        )


class TestAnalyzeAs:
    def test_grc_counts_match_direct_enumeration(self, figure1_index):
        graph = figure1_topology()
        record = analyze_as(graph, figure1_index, AS_D)
        assert record.path_counts["GRC"] == len(grc_length3_paths(graph, AS_D))
        assert record.destination_counts["GRC"] == len(
            grc_length3_destinations(graph, AS_D)
        )

    def test_scenario_ordering_is_monotone(self, figure1_index):
        """GRC ≤ Top1 ≤ Top5 ≤ Top50 ≤ MA* ≤ MA for paths and destinations."""
        graph = figure1_topology()
        ordering = ["GRC", "MA* (Top 1)", "MA* (Top 5)", "MA* (Top 50)", "MA*", "MA"]
        for asn in graph:
            record = analyze_as(graph, figure1_index, asn)
            path_counts = [record.path_counts[s] for s in ordering]
            destination_counts = [record.destination_counts[s] for s in ordering]
            assert path_counts == sorted(path_counts)
            assert destination_counts == sorted(destination_counts)

    def test_additional_paths_of_transit_as_positive(self, figure1_index):
        graph = figure1_topology()
        record = analyze_as(graph, figure1_index, AS_D)
        assert record.additional_paths > 0
        assert record.additional_destinations >= 0

    def test_stub_as_gains_only_indirect_paths(self, figure1_index):
        graph = figure1_topology()
        record = analyze_as(graph, figure1_index, AS_H)
        # H concludes no MA (it has no peers), so MA* equals GRC ...
        assert record.path_counts["MA*"] == record.path_counts["GRC"]
        # ... and any gain can only come from other ASes' agreements.
        assert record.path_counts["MA"] >= record.path_counts["MA*"]


class TestAnalyzePathDiversity:
    @pytest.fixture(scope="class")
    def result(self, medium_topology):
        return analyze_path_diversity(
            medium_topology.graph, sample_size=60, seed=5
        )

    def test_record_count_matches_sample(self, result):
        assert len(result.records) == 60

    def test_ma_dominates_grc_in_the_mean(self, result):
        assert result.path_cdf("MA").mean > result.path_cdf("GRC").mean
        assert result.destination_cdf("MA").mean >= result.destination_cdf("GRC").mean

    def test_most_gains_are_directly_negotiated(self, result):
        """The paper's observation that MA* is close to MA (relative to GRC)."""
        grc_mean = result.path_cdf("GRC").mean
        ma_star_mean = result.path_cdf("MA*").mean
        ma_mean = result.path_cdf("MA").mean
        assert ma_mean > grc_mean
        assert (ma_star_mean - grc_mean) >= 0.5 * (ma_mean - grc_mean)

    def test_top1_already_provides_gains(self, result):
        assert result.path_cdf("MA* (Top 1)").mean > result.path_cdf("GRC").mean

    def test_summaries_are_consistent(self, result):
        paths_summary = result.additional_path_summary()
        destination_summary = result.additional_destination_summary()
        assert paths_summary["count"] == 60
        assert paths_summary["max"] >= paths_summary["mean"] >= 0
        assert destination_summary["max"] >= destination_summary["mean"] >= 0

    def test_explicit_agreement_list_matches_default(self, medium_topology):
        agreements = list(enumerate_mutuality_agreements(medium_topology.graph))
        explicit = analyze_path_diversity(
            medium_topology.graph, agreements=agreements, sample_size=20, seed=9
        )
        default = analyze_path_diversity(medium_topology.graph, sample_size=20, seed=9)
        for left, right in zip(explicit.records, default.records):
            assert left.path_counts == right.path_counts
