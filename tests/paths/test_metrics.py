"""Unit tests for the CDF / statistics helpers."""

import pytest

from repro.paths.metrics import EmpiricalCDF, summarize


class TestEmpiricalCDF:
    def test_values_are_sorted(self):
        cdf = EmpiricalCDF((3.0, 1.0, 2.0))
        assert cdf.values == (1.0, 2.0, 3.0)

    def test_at(self):
        cdf = EmpiricalCDF((1.0, 2.0, 3.0, 4.0))
        assert cdf.at(0.5) == 0.0
        assert cdf.at(1.0) == 0.25
        assert cdf.at(2.5) == 0.5
        assert cdf.at(4.0) == 1.0

    def test_fraction_above(self):
        cdf = EmpiricalCDF((1.0, 2.0, 3.0, 4.0))
        assert cdf.fraction_above(2.0) == 0.5
        assert cdf.fraction_above(0.0) == 1.0
        assert cdf.fraction_above(4.0) == 0.0

    def test_fraction_at_least(self):
        cdf = EmpiricalCDF((1.0, 2.0, 3.0, 4.0))
        assert cdf.fraction_at_least(2.0) == 0.75
        assert cdf.fraction_at_least(5.0) == 0.0

    def test_quantile_and_median(self):
        cdf = EmpiricalCDF((1.0, 2.0, 3.0, 4.0))
        assert cdf.median == pytest.approx(2.5)
        assert cdf.quantile(0.0) == 1.0
        assert cdf.quantile(1.0) == 4.0

    def test_quantile_out_of_range(self):
        with pytest.raises(ValueError):
            EmpiricalCDF((1.0,)).quantile(1.5)

    def test_empty_cdf_behaviour(self):
        cdf = EmpiricalCDF(())
        assert cdf.count == 0
        assert cdf.at(1.0) == 0.0
        assert cdf.fraction_above(1.0) == 0.0
        assert cdf.mean == 0.0
        with pytest.raises(ValueError):
            _ = cdf.maximum
        with pytest.raises(ValueError):
            cdf.quantile(0.5)

    def test_min_max_mean(self):
        cdf = EmpiricalCDF((5.0, 1.0, 3.0))
        assert cdf.minimum == 1.0
        assert cdf.maximum == 5.0
        assert cdf.mean == pytest.approx(3.0)

    def test_series_is_monotone(self):
        cdf = EmpiricalCDF((4.0, 2.0, 7.0, 1.0))
        xs, ys = cdf.series()
        assert list(xs) == sorted(xs)
        assert list(ys) == sorted(ys)
        assert ys[-1] == pytest.approx(1.0)

    def test_series_of_empty_cdf(self):
        assert EmpiricalCDF(()).series() == ((), ())


class TestSummarize:
    def test_summary_values(self):
        summary = summarize([1.0, 2.0, 3.0, 10.0])
        assert summary["count"] == 4.0
        assert summary["mean"] == 4.0
        assert summary["median"] == 2.5
        assert summary["min"] == 1.0
        assert summary["max"] == 10.0

    def test_empty_summary(self):
        summary = summarize([])
        assert summary["count"] == 0.0
        assert summary["mean"] == 0.0
