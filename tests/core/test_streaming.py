"""Unit tests for the streaming lines→arrays compile path.

The contract: for any valid as-rel content,
:func:`repro.core.compile_as_rel_lines` must produce a detached
:class:`~repro.core.CompiledTopology` whose arrays and source
fingerprint are identical to parsing the same lines into an
:class:`~repro.topology.ASGraph` and compiling that — without ever
building the dict graph.  Validation must be no weaker than the graph
path's.
"""

import pytest

from repro.core import compile_as_rel_file, compile_as_rel_lines, compile_topology
from repro.topology import generate_topology
from repro.topology.caida import CaidaFormatError, dump_as_rel_lines, parse_as_rel_lines
from repro.topology.fixtures import figure1_topology

SAMPLE = [
    "# comment",
    "1|2|-1",
    "1|3|-1",
    "2|3|0",
    "3|4|-1|mlp",
]


class TestEquivalenceWithGraphCompile:
    def test_sample_lines_match_graph_compile(self):
        streamed = compile_as_rel_lines(SAMPLE)
        graph = parse_as_rel_lines(SAMPLE)  # kept alive: the reference view's
        reference = compile_topology(graph)  # fingerprint derives lazily from it
        assert streamed.same_arrays(reference)
        assert streamed.source_fingerprint == reference.source_fingerprint

    def test_figure1_topology_matches_graph_compile(self):
        graph = figure1_topology()
        lines = dump_as_rel_lines(graph)
        streamed = compile_as_rel_lines(lines)
        assert streamed.same_arrays(compile_topology(graph))
        assert streamed.source_fingerprint == graph.content_fingerprint()

    @pytest.mark.parametrize("seed", [0, 7, 2021])
    def test_generated_topologies_match_graph_compile(self, seed):
        graph = generate_topology(
            num_tier1=3, num_tier2=6, num_tier3=15, num_stubs=40, seed=seed
        ).graph
        streamed = compile_as_rel_lines(dump_as_rel_lines(graph))
        assert streamed.same_arrays(compile_topology(graph))
        assert streamed.source_fingerprint == graph.content_fingerprint()

    def test_streamed_view_is_detached_and_never_stale(self):
        streamed = compile_as_rel_lines(SAMPLE)
        assert streamed.detached
        assert not streamed.is_stale()

    def test_line_order_does_not_change_fingerprint(self):
        shuffled = [SAMPLE[3], SAMPLE[1], SAMPLE[4], SAMPLE[2]]
        assert (
            compile_as_rel_lines(SAMPLE).source_fingerprint
            == compile_as_rel_lines(shuffled).source_fingerprint
        )

    def test_empty_input_compiles_to_empty_topology(self):
        streamed = compile_as_rel_lines(["# nothing", ""])
        assert len(streamed) == 0
        assert streamed.source_fingerprint == parse_as_rel_lines([]).content_fingerprint()


class TestValidation:
    def test_self_loop_rejected_with_line_number(self):
        with pytest.raises(CaidaFormatError, match=r"line 2: self-loop"):
            compile_as_rel_lines(["1|2|0", "9|9|0"])

    def test_conflicting_duplicate_rejected_with_line_numbers(self):
        with pytest.raises(
            CaidaFormatError,
            match=r"conflicting duplicate link.*line",
        ):
            compile_as_rel_lines(["1|2|-1", "1|2|0"])

    def test_identical_duplicates_deduplicated(self):
        streamed = compile_as_rel_lines(["1|2|-1", "1|2|-1"])
        reference = compile_topology(parse_as_rel_lines(["1|2|-1"]))
        assert streamed.same_arrays(reference)

    def test_malformed_line_rejected(self):
        with pytest.raises(CaidaFormatError, match="line 1"):
            compile_as_rel_lines(["1|2"])


class TestFileCompile:
    def test_compile_as_rel_file_matches_lines(self, tmp_path):
        path = tmp_path / "topo.as-rel.txt"
        path.write_text("\n".join(SAMPLE) + "\n", encoding="utf-8")
        from_file = compile_as_rel_file(path)
        assert from_file.same_arrays(compile_as_rel_lines(SAMPLE))
        assert (
            from_file.source_fingerprint
            == compile_as_rel_lines(SAMPLE).source_fingerprint
        )
