"""Tests for the order-preserving array kernels.

The kernels underwrite the batched engines' bit-exactness contract, so
these tests compare against literal Python folds — not against
``np.sum`` — including the floating-point cases (non-associative
additions, signed zeros, infinities) where the distinction matters.
"""

import numpy as np
import pytest

from repro.core.arrays import (
    exclusive_suffix_minimum,
    last_argmax,
    running_maximum,
    sequential_sum,
)


def python_fold(values):
    total = 0.0
    for value in values:
        total += value
    return total


class TestSequentialSum:
    def test_matches_left_to_right_fold_on_adversarial_floats(self):
        # Pairwise summation (np.sum) rounds these differently from a
        # left-to-right fold; the kernel must match the fold exactly.
        rng = np.random.default_rng(0)
        values = np.concatenate(
            [rng.uniform(-1.0, 1.0, 64) * 10.0 ** rng.integers(-12, 12, 64)]
        )
        assert sequential_sum(values) == python_fold(values)

    def test_differs_from_pairwise_summation_somewhere(self):
        # Sanity check that the test above is non-vacuous: across many
        # rows, pairwise np.sum disagrees with the fold at least once.
        rng = np.random.default_rng(1)
        rows = rng.uniform(-1.0, 1.0, (200, 64)) * 10.0 ** rng.integers(
            -12, 12, (200, 64)
        )
        folds = np.array([python_fold(row) for row in rows])
        assert np.array_equal(sequential_sum(rows, axis=1), folds)
        assert not np.array_equal(rows.sum(axis=1), folds)

    def test_signed_zero_normalization(self):
        # A fold started from +0.0 can never return -0.0.
        result = sequential_sum(np.array([-0.0]))
        assert result == 0.0 and not np.signbit(result)

    def test_masked_zero_terms_are_neutral(self):
        values = np.array([0.1, 0.0, 0.2, 0.0, 0.3])
        assert sequential_sum(values) == python_fold([0.1, 0.2, 0.3])

    def test_empty_axis_sums_to_zero(self):
        assert np.array_equal(
            sequential_sum(np.empty((3, 0)), axis=1), np.zeros(3)
        )

    def test_axis_argument(self):
        rows = np.arange(12.0).reshape(3, 4)
        assert np.array_equal(
            sequential_sum(rows, axis=0),
            np.array([python_fold(rows[:, j]) for j in range(4)]),
        )


class TestRunningMaximum:
    def test_matches_sequential_clamp(self):
        values = np.array([[-np.inf, 2.0, 1.0, np.inf, 3.0]])
        expected = values.copy()
        for index in range(1, values.shape[1]):
            expected[0, index] = max(expected[0, index], expected[0, index - 1])
        assert np.array_equal(running_maximum(values, axis=1), expected)


class TestExclusiveSuffixMinimum:
    def test_matches_python_reference(self):
        values = np.array([[3.0, np.inf, -1.0, 2.0]])
        expected = np.array(
            [
                [
                    min(values[0, 1:]),
                    min(values[0, 2:]),
                    min(values[0, 3:]),
                    np.inf,
                ]
            ]
        )
        assert np.array_equal(exclusive_suffix_minimum(values), expected)

    def test_last_position_gets_the_fill(self):
        assert exclusive_suffix_minimum(np.array([[1.0]]), fill=7.0)[0, 0] == 7.0


class TestLastArgmax:
    @pytest.mark.parametrize(
        "flags, expected",
        [
            ([True, False, True, False], 2),
            ([False, True], 1),
            ([True], 0),
        ],
    )
    def test_ties_break_to_the_last_flag(self, flags, expected):
        assert last_argmax(np.array(flags)) == expected

    def test_batched_rows(self):
        flags = np.array([[True, True, False], [False, False, True]])
        assert np.array_equal(last_argmax(flags), np.array([1, 2]))
