"""Tests for the batched GRC length-3 path engine."""

import pytest

from repro.core import PathEngine, compile_topology, path_engine_for
from repro.paths.grc import iter_grc_length3_paths
from repro.topology import TopologyError, figure1_topology
from repro.topology.fixtures import AS_A, AS_C, AS_D, AS_E, AS_H, AS_I
from repro.topology.generator import generate_topology


@pytest.fixture()
def graph():
    return figure1_topology()


@pytest.fixture()
def engine(graph):
    return PathEngine(compile_topology(graph))


class TestPerSourceQueries:
    def test_paths_match_the_naive_reference(self, graph, engine):
        for source in graph:
            assert engine.paths(source) == frozenset(
                iter_grc_length3_paths(graph, source)
            )

    def test_known_paths_from_the_figure1_topology(self, engine):
        assert engine.paths(AS_H) == {
            (AS_H, AS_D, AS_A),
            (AS_H, AS_D, AS_C),
            (AS_H, AS_D, AS_E),
        }
        assert engine.destinations(AS_H) == {AS_A, AS_C, AS_E}

    def test_counts_match_path_sets(self, graph, engine):
        for source in graph:
            assert engine.count(source) == len(engine.paths(source))
            assert engine.destination_count(source) == len(engine.destinations(source))

    def test_paths_between(self, graph, engine):
        for source in graph:
            for destination in engine.destinations(source):
                expected = frozenset(
                    p
                    for p in iter_grc_length3_paths(graph, source)
                    if p[2] == destination
                )
                assert engine.paths_between(source, destination) == expected

    def test_paths_between_same_as_is_empty(self, engine):
        assert engine.paths_between(AS_D, AS_D) == frozenset()

    def test_is_grc_path(self, graph, engine):
        assert engine.is_grc_path(AS_D, AS_E, AS_I)
        assert not engine.is_grc_path(AS_D, AS_E, AS_A)  # no E–A link
        assert not engine.is_grc_path(AS_D, AS_D, AS_E)  # not three distinct
        for source in graph:
            for path in iter_grc_length3_paths(graph, source):
                assert engine.is_grc_path(*path)

    def test_unknown_source_raises_topology_error(self, engine):
        with pytest.raises(TopologyError):
            engine.paths(999_999)
        with pytest.raises(TopologyError):
            engine.count(999_999)

    def test_grc_api_aliases(self, graph, engine):
        assert engine.grc_length3_paths(AS_H) == engine.paths(AS_H)
        assert engine.grc_length3_destinations(AS_H) == engine.destinations(AS_H)
        assert engine.count_grc_length3_paths(AS_H) == engine.count(AS_H)
        assert engine.grc_paths_between(AS_H, AS_A) == engine.paths_between(AS_H, AS_A)


class TestBatchedQueries:
    def test_counts_by_source_cover_every_as(self, graph, engine):
        counts = engine.counts_by_source()
        assert set(counts) == graph.ases
        for source in graph:
            assert counts[source] == sum(1 for _ in iter_grc_length3_paths(graph, source))

    def test_destination_counts_by_source(self, graph, engine):
        counts = engine.destination_counts_by_source()
        for source in graph:
            naive = {p[2] for p in iter_grc_length3_paths(graph, source)}
            assert counts[source] == len(naive)

    def test_memoized_paths_are_the_same_object(self, engine):
        assert engine.paths(AS_D) is engine.paths(AS_D)


class TestBlockedSweep:
    def test_tiny_blocks_give_identical_results(self, graph):
        # block_bytes=1 forces one source per destination block; results
        # must not depend on the blocking at all.
        blocked = PathEngine(compile_topology(graph), block_bytes=1)
        assert blocked.block_size() == 1
        wide = PathEngine(compile_topology(graph))
        for source in graph:
            assert (
                blocked.count(source),
                blocked.destination_count(source),
                blocked.destinations(source),
            ) == (
                wide.count(source),
                wide.destination_count(source),
                wide.destinations(source),
            )

    def test_range_concatenation_equals_full_pass(self, graph):
        import numpy as np

        engine = PathEngine(compile_topology(graph))
        n = engine.topology.n
        cut = n // 3
        for method in (engine.counts_range, engine.destination_counts_range):
            full = method(0, n)
            merged = np.concatenate(
                [method(0, cut), method(cut, 2 * cut), method(2 * cut, n)]
            )
            assert np.array_equal(full, merged)

    def test_no_dense_nxn_allocation(self, graph):
        import repro.core.path_engine as pe

        engine = PathEngine(compile_topology(graph), block_bytes=64)
        seen_shapes = []
        original = pe.PathEngine._destination_block

        def spy(self, lo, hi):
            block = original(self, lo, hi)
            seen_shapes.append(block.shape)
            return block

        pe.PathEngine._destination_block = spy
        try:
            engine.destination_counts_range(0, engine.topology.n)
        finally:
            pe.PathEngine._destination_block = original
        n = engine.topology.n
        assert seen_shapes, "blocked sweep never ran"
        assert all(rows < n for rows, _ in seen_shapes)


class TestRefresh:
    def test_full_refresh_drops_all_memoized_results(self, graph):
        engine = PathEngine(compile_topology(graph))
        before = engine.paths(AS_D)
        graph.remove_link(AS_D, AS_E)
        engine.refresh(compile_topology(graph))
        after = engine.paths(AS_D)
        assert after != before
        assert after == frozenset(iter_grc_length3_paths(graph, AS_D))

    def test_dirty_refresh_keeps_clean_sources(self, graph):
        engine = PathEngine(compile_topology(graph))
        clean_before = engine.paths(AS_I)  # I is 2+ hops from the D–H link
        graph.remove_link(AS_D, AS_H)
        dirty = {AS_D, AS_H} | graph.neighbors(AS_D) | {AS_A, AS_C, AS_E}
        engine.refresh(compile_topology(graph), dirty_sources=dirty)
        # The clean source keeps its memoized object...
        assert engine.paths(AS_I) is clean_before
        # ...and dirty sources are recomputed against the new topology.
        assert engine.paths(AS_D) == frozenset(iter_grc_length3_paths(graph, AS_D))
        assert all(path[1] != AS_H for path in engine.paths(AS_A))


class TestSharedEngineCache:
    def test_same_engine_until_mutation(self, graph):
        first = path_engine_for(graph)
        assert path_engine_for(graph) is first
        graph.add_peering(AS_C, AS_I)
        second = path_engine_for(graph)
        assert second is first  # the engine object is reused...
        # ...but answers reflect the mutated topology.
        assert second.paths(AS_C) == frozenset(iter_grc_length3_paths(graph, AS_C))

    def test_generated_topology_engine_matches_reference(self):
        graph = generate_topology(
            num_tier1=3, num_tier2=8, num_tier3=20, num_stubs=60, seed=11
        ).graph
        engine = path_engine_for(graph)
        for source in sorted(graph.ases)[:30]:
            assert engine.paths(source) == frozenset(
                iter_grc_length3_paths(graph, source)
            )
