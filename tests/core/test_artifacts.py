"""Unit tests for the content-addressed compiled-topology artifact store.

The store's contract: a published artifact, opened memory-mapped, is
indistinguishable from a fresh compile of the same source — same
arrays, same fingerprint, same :class:`~repro.core.PathEngine` outputs
— and publishing is atomic and idempotent (the store is keyed by
content fingerprint, so re-publishing the same topology is a no-op that
returns the existing path).
"""

import json

import pytest

from repro.core import PathEngine, compile_topology, load_artifact
from repro.core.artifacts import ArtifactError, ArtifactStore, default_store_root
from repro.topology import generate_topology
from repro.topology.fixtures import figure1_topology


@pytest.fixture
def graph():
    return generate_topology(
        num_tier1=3, num_tier2=6, num_tier3=15, num_stubs=40, seed=11
    ).graph


class TestRoundTrip:
    def test_loaded_artifact_matches_fresh_compile(self, tmp_path, graph):
        store = ArtifactStore(tmp_path)
        compiled, path = store.ensure(graph)
        view = load_artifact(path)
        fresh = compile_topology(graph)
        assert view.same_arrays(fresh)
        assert view.source_fingerprint == fresh.source_fingerprint
        assert view.detached
        assert not view.is_stale()

    def test_path_engine_outputs_identical_on_mmap_view(self, tmp_path, graph):
        store = ArtifactStore(tmp_path)
        _, path = store.ensure(graph)
        from_artifact = PathEngine(load_artifact(path))
        from_graph = PathEngine(compile_topology(graph))
        assert from_artifact.counts_by_source() == from_graph.counts_by_source()
        assert (
            from_artifact.destination_counts_by_source()
            == from_graph.destination_counts_by_source()
        )
        some_source = sorted(graph.ases)[0]
        assert from_artifact.paths(some_source) == from_graph.paths(some_source)

    def test_store_addressed_by_fingerprint(self, tmp_path, graph):
        store = ArtifactStore(tmp_path)
        compiled, path = store.ensure(graph)
        assert store.contains(compiled.source_fingerprint)
        assert store.path_for(compiled.source_fingerprint) == path
        loaded = store.load(compiled.source_fingerprint)
        assert loaded.same_arrays(compiled)


class TestPublishSemantics:
    def test_ensure_is_idempotent(self, tmp_path, graph):
        store = ArtifactStore(tmp_path)
        _, first = store.ensure(graph)
        meta_mtime = (first / "meta.json").stat().st_mtime_ns
        _, second = store.ensure(graph)
        assert second == first
        # The second ensure was served from the store, not re-published.
        assert (first / "meta.json").stat().st_mtime_ns == meta_mtime

    def test_distinct_topologies_get_distinct_directories(self, tmp_path, graph):
        store = ArtifactStore(tmp_path)
        _, first = store.ensure(graph)
        _, second = store.ensure(figure1_topology())
        assert first != second

    def test_no_partial_directories_left_behind(self, tmp_path, graph):
        store = ArtifactStore(tmp_path)
        _, path = store.ensure(graph)
        # Only fully-published artifact directories live under the root.
        children = [p for p in store.root.iterdir()]
        assert children == [path]

    def test_ensure_compiled_accepts_detached_views(self, tmp_path, graph):
        store = ArtifactStore(tmp_path)
        compiled = compile_topology(graph)
        path = store.ensure_compiled(compiled)
        assert load_artifact(path).same_arrays(compiled)


class TestErrors:
    def test_missing_artifact_rejected(self, tmp_path):
        with pytest.raises(ArtifactError, match="unreadable topology artifact"):
            load_artifact(tmp_path / "no-such-artifact")

    def test_load_of_unknown_fingerprint_rejected(self, tmp_path):
        with pytest.raises(ArtifactError):
            ArtifactStore(tmp_path).load("0" * 64)

    def test_corrupt_meta_rejected(self, tmp_path, graph):
        store = ArtifactStore(tmp_path)
        _, path = store.ensure(graph)
        meta = json.loads((path / "meta.json").read_text(encoding="utf-8"))
        del meta["fingerprint"]
        (path / "meta.json").write_text(json.dumps(meta), encoding="utf-8")
        with pytest.raises(ArtifactError, match="no fingerprint"):
            load_artifact(path)


class TestDefaultRoot:
    def test_env_var_overrides_default(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_TOPOLOGY_STORE", str(tmp_path / "elsewhere"))
        assert default_store_root() == tmp_path / "elsewhere"
        assert ArtifactStore().root == tmp_path / "elsewhere"
