"""Tests for the array-compiled topology view."""

import numpy as np
import pytest

from repro.core import CompiledTopology, compile_topology
from repro.topology import TopologyError, figure1_topology
from repro.topology.fixtures import AS_A, AS_B, AS_C, AS_D, AS_E, AS_H
from repro.topology.generator import generate_topology


@pytest.fixture()
def graph():
    return figure1_topology()


@pytest.fixture()
def compiled(graph):
    return CompiledTopology.compile(graph)


class TestInterning:
    def test_indices_cover_sorted_asns(self, graph, compiled):
        assert compiled.asns == tuple(sorted(graph.ases))
        for i, asn in enumerate(compiled.asns):
            assert compiled.index_of(asn) == i
            assert compiled.asn_of(i) == asn

    def test_unknown_asn_raises_topology_error(self, compiled):
        with pytest.raises(TopologyError):
            compiled.index_of(999_999)

    def test_contains_and_len(self, graph, compiled):
        assert len(compiled) == len(graph)
        assert AS_D in compiled
        assert 999_999 not in compiled


class TestAdjacency:
    def test_role_sets_match_the_graph(self, graph, compiled):
        for asn in graph:
            assert compiled.neighbors(asn) == graph.neighbors(asn)
            assert compiled.customers(asn) == graph.customers(asn)
            assert compiled.peers(asn) == graph.peers(asn)
            assert compiled.providers(asn) == graph.providers(asn)

    def test_index_rows_are_sorted(self, graph, compiled):
        for asn in graph:
            row = compiled.neighbors_idx(compiled.index_of(asn))
            assert list(row) == sorted(row)

    def test_set_views_are_cached(self, compiled):
        assert compiled.neighbors(AS_D) is compiled.neighbors(AS_D)

    def test_degrees_match(self, graph, compiled):
        for asn in graph:
            assert compiled.degree(asn) == graph.degree(asn)
        assert np.array_equal(
            compiled.customer_counts,
            [len(graph.customers(a)) for a in compiled.asns],
        )


class TestMembershipTables:
    def test_has_link_matches_the_graph(self, graph, compiled):
        for left in graph:
            for right in graph:
                if left != right:
                    assert compiled.has_link(left, right) == graph.has_link(left, right)

    def test_is_customer(self, compiled):
        assert compiled.is_customer(AS_A, AS_D)  # D buys transit from A
        assert not compiled.is_customer(AS_D, AS_A)
        assert not compiled.is_customer(AS_D, AS_E)  # peers

    def test_role_of_matches_the_graph(self, graph, compiled):
        for asn in graph:
            for neighbor in graph.neighbors(asn):
                assert compiled.role_of(asn, neighbor) == graph.role_of(asn, neighbor)

    def test_role_of_non_neighbor_raises(self, compiled):
        with pytest.raises(TopologyError):
            compiled.role_of(AS_H, AS_B)

    def test_roles_on_generated_topology(self):
        graph = generate_topology(
            num_tier1=3, num_tier2=10, num_tier3=30, num_stubs=80, seed=5
        ).graph
        compiled = compile_topology(graph)
        for asn in sorted(graph.ases)[:25]:
            for neighbor in graph.neighbors(asn):
                assert compiled.role_of(asn, neighbor) is graph.role_of(asn, neighbor)
                assert compiled.has_link(asn, neighbor)


class TestInvalidationContract:
    def test_fresh_compile_is_not_stale(self, graph):
        compiled = compile_topology(graph)
        assert not compiled.is_stale(graph)
        assert not compiled.is_stale()

    def test_mutation_marks_the_view_stale(self, graph):
        compiled = compile_topology(graph)
        graph.remove_link(AS_D, AS_E)
        assert compiled.is_stale(graph)

    def test_compile_cache_returns_same_object_until_mutation(self, graph):
        first = compile_topology(graph)
        assert compile_topology(graph) is first
        graph.add_peering(AS_C, AS_B)
        second = compile_topology(graph)
        assert second is not first
        assert AS_B in second.peers(AS_C)

    def test_every_mutation_kind_bumps_the_counter(self, graph):
        before = graph.mutation_count
        graph.add_as(424242)
        after_add_as = graph.mutation_count
        assert after_add_as > before
        graph.add_provider_customer(424242, AS_H)
        after_link = graph.mutation_count
        assert after_link > after_add_as
        graph.remove_link(424242, AS_H)
        assert graph.mutation_count > after_link

    def test_idempotent_operations_do_not_bump(self, graph):
        graph.add_as(AS_D)  # already present
        before = graph.mutation_count
        graph.add_as(AS_D)
        graph.add_peering(AS_D, AS_E)  # identical existing link
        assert graph.mutation_count == before

    def test_stale_after_source_is_garbage_collected(self):
        compiled = compile_topology(figure1_topology())
        assert compiled.is_stale()  # source graph dropped immediately


class TestSourceFingerprint:
    def test_captured_at_compile_time(self):
        graph = figure1_topology()
        compiled = CompiledTopology(graph)
        assert compiled.source_fingerprint == graph.content_fingerprint()

    def test_identical_content_same_fingerprint_across_instances(self):
        # The source graphs must stay alive: the fingerprint is derived
        # lazily through the compiled view's weak source reference.
        first_graph, second_graph = figure1_topology(), figure1_topology()
        first = CompiledTopology(first_graph)
        second = CompiledTopology(second_graph)
        assert first.source_fingerprint == second.source_fingerprint

    def test_distinguishes_topologies(self):
        fig1_graph = figure1_topology()
        synthetic_topology = generate_topology(
            num_tier1=2, num_tier2=3, num_tier3=4, num_stubs=5, seed=1
        )
        fig1 = CompiledTopology(fig1_graph)
        synthetic = CompiledTopology(synthetic_topology.graph)
        assert fig1.source_fingerprint != synthetic.source_fingerprint

    def test_collected_source_refuses_fingerprint(self):
        compiled = CompiledTopology(figure1_topology())  # source dropped
        with pytest.raises(RuntimeError, match="gone or has mutated"):
            _ = compiled.source_fingerprint

    def test_lazy_fingerprint_refuses_stale_or_collected_source(self):
        graph = figure1_topology()
        compiled = CompiledTopology(graph)
        graph.add_peering(424242, AS_H)
        with pytest.raises(RuntimeError, match="mutated since compilation"):
            _ = compiled.source_fingerprint

    def test_lazy_fingerprint_memoized_while_source_alive(self):
        graph = figure1_topology()
        compiled = CompiledTopology(graph)
        first = compiled.source_fingerprint
        assert compiled.source_fingerprint is first
