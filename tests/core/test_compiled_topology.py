"""Tests for the array-compiled topology view."""

import numpy as np
import pytest

from repro.core import CompiledTopology, compile_topology
from repro.topology import TopologyError, figure1_topology
from repro.topology.fixtures import AS_A, AS_B, AS_C, AS_D, AS_E, AS_H
from repro.topology.generator import generate_topology
from repro.topology.relationships import Role


@pytest.fixture()
def graph():
    return figure1_topology()


@pytest.fixture()
def compiled(graph):
    return CompiledTopology.compile(graph)


class TestInterning:
    def test_indices_cover_sorted_asns(self, graph, compiled):
        assert compiled.asns == tuple(sorted(graph.ases))
        for i, asn in enumerate(compiled.asns):
            assert compiled.index_of(asn) == i
            assert compiled.asn_of(i) == asn

    def test_unknown_asn_raises_topology_error(self, compiled):
        with pytest.raises(TopologyError):
            compiled.index_of(999_999)

    def test_contains_and_len(self, graph, compiled):
        assert len(compiled) == len(graph)
        assert AS_D in compiled
        assert 999_999 not in compiled


class TestAdjacency:
    def test_role_sets_match_the_graph(self, graph, compiled):
        for asn in graph:
            assert compiled.neighbors(asn) == graph.neighbors(asn)
            assert compiled.customers(asn) == graph.customers(asn)
            assert compiled.peers(asn) == graph.peers(asn)
            assert compiled.providers(asn) == graph.providers(asn)

    def test_index_rows_are_sorted(self, graph, compiled):
        for asn in graph:
            row = compiled.neighbors_idx(compiled.index_of(asn))
            assert list(row) == sorted(row)

    def test_set_views_are_cached(self, compiled):
        assert compiled.neighbors(AS_D) is compiled.neighbors(AS_D)

    def test_degrees_match(self, graph, compiled):
        for asn in graph:
            assert compiled.degree(asn) == graph.degree(asn)
        assert np.array_equal(
            compiled.customer_counts,
            [len(graph.customers(a)) for a in compiled.asns],
        )


class TestMembershipTables:
    def test_has_link_matches_the_graph(self, graph, compiled):
        for left in graph:
            for right in graph:
                if left != right:
                    assert compiled.has_link(left, right) == graph.has_link(left, right)

    def test_is_customer(self, compiled):
        assert compiled.is_customer(AS_A, AS_D)  # D buys transit from A
        assert not compiled.is_customer(AS_D, AS_A)
        assert not compiled.is_customer(AS_D, AS_E)  # peers

    def test_role_of_matches_the_graph(self, graph, compiled):
        for asn in graph:
            for neighbor in graph.neighbors(asn):
                assert compiled.role_of(asn, neighbor) == graph.role_of(asn, neighbor)

    def test_role_of_non_neighbor_raises(self, compiled):
        with pytest.raises(TopologyError):
            compiled.role_of(AS_H, AS_B)

    def test_roles_on_generated_topology(self):
        graph = generate_topology(
            num_tier1=3, num_tier2=10, num_tier3=30, num_stubs=80, seed=5
        ).graph
        compiled = compile_topology(graph)
        for asn in sorted(graph.ases)[:25]:
            for neighbor in graph.neighbors(asn):
                assert compiled.role_of(asn, neighbor) is graph.role_of(asn, neighbor)
                assert compiled.has_link(asn, neighbor)


class TestInvalidationContract:
    def test_fresh_compile_is_not_stale(self, graph):
        compiled = compile_topology(graph)
        assert not compiled.is_stale(graph)
        assert not compiled.is_stale()

    def test_mutation_marks_the_view_stale(self, graph):
        compiled = compile_topology(graph)
        graph.remove_link(AS_D, AS_E)
        assert compiled.is_stale(graph)

    def test_compile_cache_returns_same_object_until_mutation(self, graph):
        first = compile_topology(graph)
        assert compile_topology(graph) is first
        graph.add_peering(AS_C, AS_B)
        second = compile_topology(graph)
        assert second is not first
        assert AS_B in second.peers(AS_C)

    def test_every_mutation_kind_bumps_the_counter(self, graph):
        before = graph.mutation_count
        graph.add_as(424242)
        after_add_as = graph.mutation_count
        assert after_add_as > before
        graph.add_provider_customer(424242, AS_H)
        after_link = graph.mutation_count
        assert after_link > after_add_as
        graph.remove_link(424242, AS_H)
        assert graph.mutation_count > after_link

    def test_idempotent_operations_do_not_bump(self, graph):
        graph.add_as(AS_D)  # already present
        before = graph.mutation_count
        graph.add_as(AS_D)
        graph.add_peering(AS_D, AS_E)  # identical existing link
        assert graph.mutation_count == before

    def test_stale_after_source_is_garbage_collected(self):
        compiled = compile_topology(figure1_topology())
        assert compiled.is_stale()  # source graph dropped immediately
