"""BoundedCache: the instrumented LRU behind every warm-state layer."""

import pytest

from repro.core.caching import BoundedCache


class TestBasics:
    def test_get_put_and_counters(self):
        cache = BoundedCache()
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.stats() == {
            "size": 1,
            "max_entries": None,
            "hits": 1,
            "misses": 1,
            "evictions": 0,
        }

    def test_peek_does_not_touch_counters(self):
        cache = BoundedCache()
        cache.put("a", 1)
        assert cache.peek("a") == 1
        assert cache.peek("b", "fallback") == "fallback"
        assert cache.hits == 0 and cache.misses == 0

    def test_clear_drops_entries_but_keeps_lifetime_counters(self):
        cache = BoundedCache()
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 1

    def test_negative_bound_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            BoundedCache(-1)


class TestBounds:
    def test_lru_eviction_order(self):
        cache = BoundedCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh: "b" is now least recently used
        cache.put("c", 3)
        assert "a" in cache and "c" in cache
        assert "b" not in cache
        assert cache.evictions == 1

    def test_put_refresh_does_not_evict(self):
        cache = BoundedCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # refresh, not growth
        assert len(cache) == 2 and cache.evictions == 0
        assert cache.get("a") == 10

    def test_zero_disables_storage(self):
        cache = BoundedCache(0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0
        assert cache.misses == 1 and cache.evictions == 0


class TestMappingProtocol:
    """Introspection reads must not disturb counters or recency."""

    def test_subscript_keys_items_and_equality(self):
        cache = BoundedCache()
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache["a"] == 1
        assert sorted(cache.keys()) == ["a", "b"]
        assert dict(cache) == {"a": 1, "b": 2}
        assert cache == {"a": 1, "b": 2}
        assert cache != {"a": 1}
        assert cache.hits == 0 and cache.misses == 0

    def test_subscript_missing_raises_key_error(self):
        with pytest.raises(KeyError):
            BoundedCache()["missing"]
