"""The ``repro sweep`` CLI subcommand."""

import json

from repro.cli import main


def tiny_spec_file(tmp_path, **overrides):
    data = {
        "name": "cli-tiny",
        "scales": [
            {
                "name": "t",
                "num_tier1": 2,
                "num_tier2": 5,
                "num_tier3": 12,
                "num_stubs": 30,
                "sample_size": 20,
                "pair_sample_size": 8,
            }
        ],
        "seeds": [1],
        "figures": ["fig3"],
    }
    data.update(overrides)
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(data))
    return path


def test_sweep_list_smoke(capsys):
    assert main(["sweep", "--smoke", "--list"]) == 0
    out = capsys.readouterr().out
    assert "scenario/churn-base/tiny/seed1" in out
    assert "18 shards" in out


def test_sweep_runs_spec_file(tmp_path, capsys):
    spec = tiny_spec_file(tmp_path)
    code = main(
        [
            "sweep",
            "--spec",
            str(spec),
            "--cache-dir",
            str(tmp_path / "cache"),
            "--out",
            str(tmp_path / "out"),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "sweep: cli-tiny" in out
    assert "computed: 1" in out
    summary = json.loads((tmp_path / "out" / "sweep_summary.json").read_text())
    assert summary["name"] == "cli-tiny"
    assert (tmp_path / "out" / "tables" / "fig3.ma_mean_paths.csv").is_file()


def test_sweep_resume_reports_cached(tmp_path, capsys):
    spec = tiny_spec_file(tmp_path)
    arguments = [
        "sweep",
        "--spec",
        str(spec),
        "--cache-dir",
        str(tmp_path / "cache"),
        "--out",
        str(tmp_path / "out"),
    ]
    assert main(arguments) == 0
    capsys.readouterr()
    assert main(arguments) == 0
    assert "cached: 1" in capsys.readouterr().out


def test_sweep_rejects_bad_spec(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text('{"name": "x"}')
    assert main(["sweep", "--spec", str(bad)]) == 2
    assert "error" in capsys.readouterr().err


def test_sweep_rejects_bad_jobs(tmp_path, capsys):
    assert main(["sweep", "--smoke", "--jobs", "0"]) == 2
    assert "--jobs" in capsys.readouterr().err
