"""Content-addressed cache keys and atomic entry storage."""

import json

from repro.sweep import SweepCache, code_version, shard_key, smoke_spec


class TestShardKey:
    def test_stable_for_identical_params(self):
        params = smoke_spec().expand()[0].params()
        assert shard_key(params, code="c1") == shard_key(params, code="c1")

    def test_changes_with_any_shard_param(self):
        shards = smoke_spec().expand()
        base = shard_key(shards[0].params(), code="c1")
        for other in shards[1:]:
            assert shard_key(other.params(), code="c1") != base
        mutated = dict(shards[0].params(), seed=999)
        assert shard_key(mutated, code="c1") != base

    def test_changes_with_code_version(self):
        params = smoke_spec().expand()[0].params()
        assert shard_key(params, code="c1") != shard_key(params, code="c2")

    def test_code_version_is_memoized_and_wellformed(self):
        first = code_version()
        assert first == code_version()
        assert len(first) == 64
        int(first, 16)  # valid hex digest


class TestSweepCache:
    def test_roundtrip(self, tmp_path):
        cache = SweepCache(tmp_path / "cache")
        record = {"id": "x", "metrics": {"m": 1.5}}
        path = cache.store("k1", record)
        assert path.is_file()
        loaded = cache.load("k1")
        assert loaded is not None
        assert loaded["metrics"] == {"m": 1.5}
        assert loaded["key"] == "k1"

    def test_missing_entry_is_none(self, tmp_path):
        cache = SweepCache(tmp_path / "cache")
        assert cache.load("nope") is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = SweepCache(tmp_path / "cache")
        cache.store("k1", {"id": "x", "metrics": {}})
        cache.path_for("k1").write_text('{"truncated": ')
        assert cache.load("k1") is None

    def test_mismatched_key_field_is_a_miss(self, tmp_path):
        # An entry copied to the wrong filename must not be served.
        cache = SweepCache(tmp_path / "cache")
        cache.store("k1", {"id": "x", "metrics": {}})
        payload = json.loads(cache.path_for("k1").read_text())
        cache.path_for("k2").write_text(json.dumps(payload))
        assert cache.load("k2") is None

    def test_no_temp_files_left_behind(self, tmp_path):
        cache = SweepCache(tmp_path / "cache")
        for index in range(5):
            cache.store(f"k{index}", {"id": str(index), "metrics": {}})
        leftovers = [p for p in (tmp_path / "cache").iterdir() if p.suffix == ".tmp"]
        assert leftovers == []
        assert len(cache.keys()) == 5
