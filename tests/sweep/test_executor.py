"""Sweep execution: determinism, resume, and targeted cache invalidation.

These are the acceptance tests of the sweep orchestrator: the same spec
must serialize byte-identically no matter how it was scheduled (fresh,
fully cached, resumed after a simulated kill, sequential or parallel),
and dirtying one shard's parameters must recompute exactly that shard.
"""

import pytest

from repro.sweep import SweepSpec, run_sweep


def tiny_mapping(**overrides):
    """A 4-shard grid small enough to run many times in one test module."""
    data = {
        "name": "tiny-test",
        "scales": [
            {
                "name": "t",
                "num_tier1": 2,
                "num_tier2": 5,
                "num_tier3": 12,
                "num_stubs": 30,
                "sample_size": 20,
                "pair_sample_size": 8,
            }
        ],
        "seeds": [1, 2],
        "figures": ["fig3", "fig4"],
        "scenarios": [
            {"scenario": "failure-churn", "label": "churn", "duration": 4.0}
        ],
    }
    data.update(overrides)
    return data


@pytest.fixture()
def tiny_spec():
    return SweepSpec.from_mapping(tiny_mapping())


def test_rerun_is_fully_cached_and_byte_identical(tiny_spec, tmp_path):
    first = run_sweep(tiny_spec, cache_dir=tmp_path / "c", out_dir=tmp_path / "o1")
    second = run_sweep(tiny_spec, cache_dir=tmp_path / "c", out_dir=tmp_path / "o2")
    assert len(first.executed) == 4 and not first.reused
    assert len(second.reused) == 4 and not second.executed
    assert first.summary_bytes() == second.summary_bytes()
    assert (
        (tmp_path / "o1" / "sweep_summary.json").read_bytes()
        == (tmp_path / "o2" / "sweep_summary.json").read_bytes()
    )
    # The CSV tables are byte-reproducible too.
    tables1 = sorted((tmp_path / "o1" / "tables").iterdir())
    tables2 = sorted((tmp_path / "o2" / "tables").iterdir())
    assert [p.name for p in tables1] == [p.name for p in tables2]
    for left, right in zip(tables1, tables2):
        assert left.read_bytes() == right.read_bytes()


def test_interrupted_run_resumes_only_missing_shards(tiny_spec, tmp_path):
    from repro.sweep import SweepCache, code_version, shard_key

    reference = run_sweep(tiny_spec, cache_dir=tmp_path / "c", out_dir=tmp_path / "o")
    # Simulate a kill mid-run: two shards never got their cache entry.
    shards = tiny_spec.expand()
    cache = SweepCache(tmp_path / "c")
    killed = [shards[1], shards[3]]
    for shard in killed:
        cache.path_for(shard_key(shard.params(), code=code_version())).unlink()
    resumed = run_sweep(tiny_spec, cache_dir=tmp_path / "c", out_dir=tmp_path / "o2")
    assert sorted(resumed.executed) == sorted(shard.shard_id for shard in killed)
    assert len(resumed.reused) == 2
    assert resumed.summary_bytes() == reference.summary_bytes()


def test_changed_shard_param_recomputes_only_that_shard(tmp_path):
    base = SweepSpec.from_mapping(tiny_mapping())
    run_sweep(base, cache_dir=tmp_path / "c", out_dir=tmp_path / "o")
    # Dirty only the scenario configuration; figure shards are untouched.
    changed = SweepSpec.from_mapping(
        tiny_mapping(
            scenarios=[
                {"scenario": "failure-churn", "label": "churn", "duration": 5.0}
            ]
        )
    )
    result = run_sweep(changed, cache_dir=tmp_path / "c", out_dir=tmp_path / "o2")
    assert sorted(result.executed) == [
        "scenario/churn/t/seed1",
        "scenario/churn/t/seed2",
    ]
    assert sorted(result.reused) == ["figures/t/seed1", "figures/t/seed2"]


def test_parallel_equals_sequential(tiny_spec, tmp_path):
    sequential = run_sweep(
        tiny_spec, jobs=1, cache_dir=tmp_path / "c1", out_dir=tmp_path / "o1"
    )
    parallel = run_sweep(
        tiny_spec, jobs=2, cache_dir=tmp_path / "c2", out_dir=tmp_path / "o2"
    )
    assert len(parallel.executed) == 4  # fresh cache: nothing reused
    assert parallel.summary_bytes() == sequential.summary_bytes()


def test_force_recomputes_everything(tiny_spec, tmp_path):
    run_sweep(tiny_spec, cache_dir=tmp_path / "c", out_dir=tmp_path / "o")
    forced = run_sweep(
        tiny_spec, cache_dir=tmp_path / "c", out_dir=tmp_path / "o", force=True
    )
    assert len(forced.executed) == 4 and not forced.reused


def test_summary_structure(tiny_spec, tmp_path):
    result = run_sweep(tiny_spec, cache_dir=tmp_path / "c", out_dir=tmp_path / "o")
    summary = result.summary
    assert summary["name"] == "tiny-test"
    assert summary["num_shards"] == 4
    assert summary["spec_hash"] == tiny_spec.spec_hash()
    ids = [shard["id"] for shard in summary["shards"]]
    assert ids == [s.shard_id for s in tiny_spec.expand()]
    # Figure shards carry the topology fingerprint of the compiled core;
    # both seeds use different topologies, so the fingerprints differ.
    figure_shards = [s for s in summary["shards"] if s["id"].startswith("figures/")]
    fingerprints = {s["topology_fingerprint"] for s in figure_shards}
    assert len(fingerprints) == 2
    assert all(isinstance(f, str) and len(f) == 64 for f in fingerprints)
    # Aggregates reduce across seeds per grid point.
    fig3 = summary["aggregates"]["fig3.ma_mean_paths"]["figures/t"]
    assert fig3["count"] == 2
    assert fig3["min"] <= fig3["mean"] <= fig3["max"]
    availability = summary["aggregates"]["availability.PAN"]["scenario/churn/t"]
    assert availability["count"] == 2
    assert 0.0 <= availability["mean"] <= 1.0
    # Timing never leaks into the summary (it would break reproducibility).
    assert "elapsed_s" not in summary["shards"][0]


def test_invalid_jobs_rejected(tiny_spec, tmp_path):
    with pytest.raises(ValueError, match="jobs must be a positive integer"):
        run_sweep(tiny_spec, jobs=0, cache_dir=tmp_path / "c", out_dir=tmp_path / "o")


def test_stale_metric_tables_are_removed(tiny_spec, tmp_path):
    run_sweep(tiny_spec, cache_dir=tmp_path / "c", out_dir=tmp_path / "o")
    tables = tmp_path / "o" / "tables"
    assert (tables / "availability.PAN.csv").is_file()
    # Drop the scenario axis: its metrics must vanish from the out dir.
    figures_only = SweepSpec.from_mapping(tiny_mapping(scenarios=[]))
    run_sweep(figures_only, cache_dir=tmp_path / "c", out_dir=tmp_path / "o")
    assert not (tables / "availability.PAN.csv").exists()
    assert (tables / "fig3.ma_mean_paths.csv").is_file()
