"""Sweep spec parsing, validation, and deterministic expansion."""

import pytest

from repro.sweep import (
    FIGURES,
    NAMED_SCALES,
    SweepSpec,
    SweepSpecError,
    smoke_spec,
)


def minimal_mapping(**overrides):
    data = {
        "name": "t",
        "scales": ["tiny"],
        "seeds": [1],
        "figures": ["fig3"],
    }
    data.update(overrides)
    return data


class TestParsing:
    def test_named_and_inline_scales(self):
        spec = SweepSpec.from_mapping(
            minimal_mapping(
                scales=[
                    "tiny",
                    {"name": "custom", "num_tier1": 2, "num_stubs": 20},
                ]
            )
        )
        assert spec.scales[0] == NAMED_SCALES["tiny"]
        custom = spec.scales[1]
        assert custom.name == "custom"
        assert custom.num_tier1 == 2
        assert custom.num_stubs == 20
        # Unspecified fields inherit the tiny defaults.
        assert custom.sample_size == NAMED_SCALES["tiny"].sample_size

    def test_unknown_named_scale_rejected(self):
        with pytest.raises(SweepSpecError, match="unknown named scale"):
            SweepSpec.from_mapping(minimal_mapping(scales=["galactic"]))

    def test_unknown_scale_field_rejected(self):
        with pytest.raises(SweepSpecError, match="unknown scale field"):
            SweepSpec.from_mapping(
                minimal_mapping(scales=[{"name": "x", "num_planets": 9}])
            )

    def test_unknown_figure_rejected(self):
        with pytest.raises(SweepSpecError, match="unknown figure"):
            SweepSpec.from_mapping(minimal_mapping(figures=["fig9"]))

    def test_figures_normalized_to_canonical_order(self):
        spec = SweepSpec.from_mapping(minimal_mapping(figures=["fig5", "fig3"]))
        assert spec.figures == ("fig3", "fig5")
        assert all(figure in FIGURES for figure in spec.figures)

    def test_scenario_unknown_field_rejected(self):
        with pytest.raises(SweepSpecError, match="no sweepable field"):
            SweepSpec.from_mapping(
                minimal_mapping(
                    figures=[],
                    scenarios=[{"scenario": "failure-churn", "warp_factor": 9}],
                )
            )

    def test_scenario_string_override_accepted(self):
        # Population spec paths are legal sweep-axis values.
        spec = SweepSpec.from_mapping(
            minimal_mapping(
                figures=[],
                scenarios=[
                    {
                        "scenario": "marketplace-heterogeneous",
                        "population": "pops/mixed.json",
                    }
                ],
            )
        )
        (scenario,) = spec.scenarios
        assert dict(scenario.overrides)["population"] == "pops/mixed.json"

    def test_scenario_non_scalar_override_rejected(self):
        with pytest.raises(SweepSpecError, match="must be a number, bool, or string"):
            SweepSpec.from_mapping(
                minimal_mapping(
                    figures=[],
                    scenarios=[
                        {"scenario": "marketplace-heterogeneous", "population": [1]}
                    ],
                )
            )

    def test_scenario_seed_override_rejected(self):
        with pytest.raises(SweepSpecError, match="cannot set 'seed'"):
            SweepSpec.from_mapping(
                minimal_mapping(
                    figures=[],
                    scenarios=[{"scenario": "failure-churn", "seed": 5}],
                )
            )

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SweepSpecError, match="unknown scenario"):
            SweepSpec.from_mapping(
                minimal_mapping(figures=[], scenarios=[{"scenario": "apocalypse"}])
            )

    def test_empty_axes_rejected(self):
        with pytest.raises(SweepSpecError, match="at least one scale"):
            SweepSpec.from_mapping(minimal_mapping(scales=[]))
        with pytest.raises(SweepSpecError, match="at least one seed"):
            SweepSpec.from_mapping(minimal_mapping(seeds=[]))
        with pytest.raises(SweepSpecError, match="'figures' and/or 'scenarios'"):
            SweepSpec.from_mapping(minimal_mapping(figures=[]))

    def test_unknown_top_level_field_rejected(self):
        with pytest.raises(SweepSpecError, match="unknown spec field"):
            SweepSpec.from_mapping(minimal_mapping(shards=3))

    def test_from_json_file(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text('{"name": "f", "scales": ["tiny"], "seeds": [4], "figures": ["fig4"]}')
        spec = SweepSpec.from_json_file(path)
        assert spec.name == "f"
        assert spec.seeds == (4,)

    def test_from_json_file_invalid(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(SweepSpecError, match="not valid JSON"):
            SweepSpec.from_json_file(path)
        with pytest.raises(SweepSpecError, match="cannot read"):
            SweepSpec.from_json_file(tmp_path / "missing.json")


class TestExpansion:
    def test_grid_size_and_order(self):
        spec = SweepSpec.from_mapping(
            minimal_mapping(
                scales=["tiny", "small"],
                seeds=[1, 2, 3],
                figures=["fig3"],
                scenarios=[
                    {"scenario": "failure-churn", "label": "a"},
                    {"scenario": "failure-churn", "label": "b", "duration": 3.0},
                ],
            )
        )
        shards = spec.expand()
        # 2 scales x 3 seeds figure shards + 2 scenarios x 2 scales x 3 seeds.
        assert len(shards) == 6 + 12
        assert shards == spec.expand()  # deterministic
        ids = [shard.shard_id for shard in shards]
        assert len(set(ids)) == len(ids)
        # Figure shards first, scale-major then seed; then scenarios.
        assert ids[0] == "figures/tiny/seed1"
        assert ids[1] == "figures/tiny/seed2"
        assert ids[3] == "figures/small/seed1"
        assert ids[6] == "scenario/a/tiny/seed1"

    def test_smoke_spec_covers_acceptance_grid(self):
        spec = smoke_spec()
        shards = spec.expand()
        scenario_shards = [s for s in shards if s.kind == "scenario"]
        # 2 scales x 3 seeds x 2 scenario configs.
        assert len(scenario_shards) == 12
        assert len(shards) >= 12

    def test_sampling_is_seeded_and_order_preserving(self):
        base = minimal_mapping(scales=["tiny", "small"], seeds=[1, 2, 3, 4, 5])
        sampled = SweepSpec.from_mapping(
            dict(base, sample={"count": 4, "seed": 9})
        ).expand()
        again = SweepSpec.from_mapping(
            dict(base, sample={"count": 4, "seed": 9})
        ).expand()
        other_seed = SweepSpec.from_mapping(
            dict(base, sample={"count": 4, "seed": 10})
        ).expand()
        full = SweepSpec.from_mapping(base).expand()
        assert sampled == again
        assert len(sampled) == 4
        assert sampled != other_seed
        # Selection preserves grid order.
        positions = [full.index(shard) for shard in sampled]
        assert positions == sorted(positions)

    def test_shard_params_and_groups(self):
        spec = smoke_spec()
        for shard in spec.expand():
            params = shard.params()
            assert params["kind"] == shard.kind
            assert params["seed"] == shard.seed
            assert shard.group_id in shard.shard_id
            assert f"seed{shard.seed}" in shard.shard_id


class TestHash:
    def test_spec_hash_stable_and_sensitive(self):
        a = SweepSpec.from_mapping(minimal_mapping())
        b = SweepSpec.from_mapping(minimal_mapping())
        c = SweepSpec.from_mapping(minimal_mapping(seeds=[2]))
        assert a.spec_hash() == b.spec_hash()
        assert a.spec_hash() != c.spec_hash()


class TestWrongTypedFields:
    def test_non_list_axes_raise_spec_errors(self):
        for field, value in (
            ("seeds", 5),
            ("scales", "tiny"),
            ("figures", "fig3"),
            ("scenarios", {"scenario": "failure-churn"}),
        ):
            with pytest.raises(SweepSpecError, match="must be a list"):
                SweepSpec.from_mapping(minimal_mapping(**{field: value}))

    def test_non_string_figure_entry_rejected(self):
        with pytest.raises(SweepSpecError, match="figures entries must be names"):
            SweepSpec.from_mapping(minimal_mapping(figures=[3]))
