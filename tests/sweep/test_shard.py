"""Single-shard execution: metrics content and scenario overrides."""

import json

import pytest

from repro.errors import ValidationError
from repro.simulation.scenarios import run_scenario, scenario_field_names
from repro.sweep import SweepSpec, run_shard


def spec_for(**overrides):
    data = {
        "name": "s",
        "scales": [
            {
                "name": "t",
                "num_tier1": 2,
                "num_tier2": 5,
                "num_tier3": 12,
                "num_stubs": 30,
                "sample_size": 20,
                "pair_sample_size": 8,
            }
        ],
        "seeds": [7],
    }
    data.update(overrides)
    return SweepSpec.from_mapping(data)


def test_figures_shard_metrics_are_json_safe_and_deterministic():
    spec = spec_for(figures=["fig2", "fig3", "fig4", "fig5", "fig6"])
    (shard,) = spec.expand()
    record = run_shard(shard)
    again = run_shard(shard)
    assert record == again
    json.dumps(record)  # strict-JSON serializable (no NaN/inf)
    metrics = record["metrics"]
    assert metrics["fig3.ma_mean_paths"] >= metrics["fig3.grc_mean_paths"]
    assert metrics["fig4.ma_mean_destinations"] >= metrics["fig4.grc_mean_destinations"]
    assert 0.0 <= metrics["fig2.best_pod_u1"] <= 1.0
    assert len(record["topology_fingerprint"]) == 64


def test_fig2_only_shard_skips_topology_work():
    spec = spec_for(figures=["fig2"])
    (shard,) = spec.expand()
    record = run_shard(shard)
    assert record["topology_fingerprint"] is None
    assert set(record["metrics"]) == {"fig2.best_pod_u1", "fig2.best_pod_u2"}


def test_scenario_shard_applies_scale_and_overrides():
    spec = spec_for(
        scenarios=[
            {"scenario": "failure-churn", "label": "short", "duration": 2.0},
            {"scenario": "failure-churn", "label": "long", "duration": 8.0},
        ]
    )
    short, long = spec.expand()
    short_record = run_shard(short)
    long_record = run_shard(long)
    assert short_record["metrics"]["trace_records"] < long_record["metrics"]["trace_records"]
    assert "availability.BGP" in short_record["metrics"]
    assert "availability.PAN" in short_record["metrics"]


def test_scenario_overrides_reach_run_scenario():
    short = run_scenario("failure-churn", seed=3, duration=2.0, num_stubs=10)
    assert short.duration == 2.0


def test_unknown_override_is_a_validation_error_naming_the_fields():
    # Regression: the unknown-key error must be ValidationError (exit 2
    # taxonomy, not TypeError) and must name BOTH the invalid key and
    # the full valid field list.
    with pytest.raises(ValidationError) as excinfo:
        run_scenario("failure-churn", warp_factor=9)
    message = str(excinfo.value)
    assert "'warp_factor'" in message
    assert "has no field(s)" in message
    for valid in ("mean_time_to_failure", "num_stubs", "duration"):
        assert valid in message


def test_heterogeneous_scenario_shard_is_parallel_deterministic(tmp_path):
    from repro.sweep import run_sweep

    spec = spec_for(
        scenarios=[
            {
                "scenario": "marketplace-heterogeneous",
                "label": "het",
                "duration": 24.0 * 8.0,
            }
        ]
    )
    sequential = run_sweep(
        spec, jobs=1, cache_dir=tmp_path / "c1", out_dir=tmp_path / "o1"
    )
    parallel = run_sweep(
        spec, jobs=2, cache_dir=tmp_path / "c2", out_dir=tmp_path / "o2"
    )
    assert parallel.summary_bytes() == sequential.summary_bytes()
    (record,) = sequential.summary["shards"]
    assert record["metrics"]["records.profile_metrics"] >= 4


def test_population_path_is_a_sweepable_string_override(tmp_path):
    # Population spec paths ride the scenario-override axis as strings.
    pop = tmp_path / "pop.json"
    pop.write_text(
        json.dumps(
            {
                "name": "all-dishonest",
                "groups": [{"profile": "dishonest", "params": {"shade": 0.4}}],
            }
        ),
        encoding="utf-8",
    )
    spec = spec_for(
        scenarios=[
            {
                "scenario": "marketplace-heterogeneous",
                "label": "pop",
                "duration": 24.0 * 4.0,
                "population": str(pop),
            }
        ]
    )
    (shard,) = spec.expand()
    record = run_shard(shard)
    assert record["metrics"]["records.profile_metrics"] == 1  # one profile


def test_scenario_field_names_expose_sweepable_knobs():
    fields = scenario_field_names("failure-churn")
    assert {"duration", "mean_time_to_failure", "num_stubs", "seed"} <= fields
    assert "name" not in fields
    with pytest.raises(KeyError, match="unknown scenario"):
        scenario_field_names("apocalypse")
