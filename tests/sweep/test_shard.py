"""Single-shard execution: metrics content and scenario overrides."""

import json

import pytest

from repro.simulation.scenarios import run_scenario, scenario_field_names
from repro.sweep import SweepSpec, run_shard


def spec_for(**overrides):
    data = {
        "name": "s",
        "scales": [
            {
                "name": "t",
                "num_tier1": 2,
                "num_tier2": 5,
                "num_tier3": 12,
                "num_stubs": 30,
                "sample_size": 20,
                "pair_sample_size": 8,
            }
        ],
        "seeds": [7],
    }
    data.update(overrides)
    return SweepSpec.from_mapping(data)


def test_figures_shard_metrics_are_json_safe_and_deterministic():
    spec = spec_for(figures=["fig2", "fig3", "fig4", "fig5", "fig6"])
    (shard,) = spec.expand()
    record = run_shard(shard)
    again = run_shard(shard)
    assert record == again
    json.dumps(record)  # strict-JSON serializable (no NaN/inf)
    metrics = record["metrics"]
    assert metrics["fig3.ma_mean_paths"] >= metrics["fig3.grc_mean_paths"]
    assert metrics["fig4.ma_mean_destinations"] >= metrics["fig4.grc_mean_destinations"]
    assert 0.0 <= metrics["fig2.best_pod_u1"] <= 1.0
    assert len(record["topology_fingerprint"]) == 64


def test_fig2_only_shard_skips_topology_work():
    spec = spec_for(figures=["fig2"])
    (shard,) = spec.expand()
    record = run_shard(shard)
    assert record["topology_fingerprint"] is None
    assert set(record["metrics"]) == {"fig2.best_pod_u1", "fig2.best_pod_u2"}


def test_scenario_shard_applies_scale_and_overrides():
    spec = spec_for(
        scenarios=[
            {"scenario": "failure-churn", "label": "short", "duration": 2.0},
            {"scenario": "failure-churn", "label": "long", "duration": 8.0},
        ]
    )
    short, long = spec.expand()
    short_record = run_shard(short)
    long_record = run_shard(long)
    assert short_record["metrics"]["trace_records"] < long_record["metrics"]["trace_records"]
    assert "availability.BGP" in short_record["metrics"]
    assert "availability.PAN" in short_record["metrics"]


def test_scenario_overrides_reach_run_scenario():
    short = run_scenario("failure-churn", seed=3, duration=2.0, num_stubs=10)
    assert short.duration == 2.0
    with pytest.raises(TypeError, match="no field"):
        run_scenario("failure-churn", warp_factor=9)


def test_scenario_field_names_expose_sweepable_knobs():
    fields = scenario_field_names("failure-churn")
    assert {"duration", "mean_time_to_failure", "num_stubs", "seed"} <= fields
    assert "name" not in fields
    with pytest.raises(KeyError, match="unknown scenario"):
        scenario_field_names("apocalypse")
