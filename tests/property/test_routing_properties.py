"""Property-based tests for the routing substrates (BGP, PAN, beaconing)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.agreements import enumerate_mutuality_agreements
from repro.routing import (
    BeaconingProcess,
    BGPSimulator,
    ForwardingEngine,
    Packet,
    PathAwareNetwork,
    PathServer,
)
from repro.routing.policies import gao_rexford_policies
from repro.topology import generate_topology


@st.composite
def tiny_topologies(draw):
    """Small random Internet-like topologies (bounded for test speed)."""
    seed = draw(st.integers(min_value=0, max_value=500))
    num_tier2 = draw(st.integers(min_value=2, max_value=6))
    num_tier3 = draw(st.integers(min_value=4, max_value=12))
    num_stubs = draw(st.integers(min_value=8, max_value=25))
    return generate_topology(
        num_tier1=2,
        num_tier2=num_tier2,
        num_tier3=num_tier3,
        num_stubs=num_stubs,
        seed=seed,
    )


class TestBGPProperties:
    @given(tiny_topologies(), st.integers(min_value=0, max_value=3))
    @settings(max_examples=15, deadline=None)
    def test_grc_policies_always_converge(self, topology, seed):
        """The Gao–Rexford theorem, checked on random topologies and schedules."""
        graph = topology.graph
        destination = sorted(graph.tier1_ases())[0]
        simulator = BGPSimulator(
            graph=graph, destination=destination, policies=gao_rexford_policies(graph)
        )
        outcome = simulator.run(seed=seed, max_rounds=300)
        assert outcome.converged
        assert not outcome.oscillation_detected

    @given(tiny_topologies())
    @settings(max_examples=15, deadline=None)
    def test_grc_routes_are_valley_free_and_loop_free(self, topology):
        graph = topology.graph
        destination = sorted(graph.tier1_ases())[0]
        simulator = BGPSimulator(
            graph=graph, destination=destination, policies=gao_rexford_policies(graph)
        )
        outcome = simulator.run(max_rounds=300)
        for asn, route in outcome.routes.items():
            if route is None:
                continue
            assert len(set(route)) == len(route)
            assert route[0] == asn
            assert route[-1] == destination
            for i in range(1, len(route) - 1):
                transit = route[i]
                customers = graph.customers(transit)
                assert route[i - 1] in customers or route[i + 1] in customers


class TestPANProperties:
    @given(tiny_topologies())
    @settings(max_examples=12, deadline=None)
    def test_grc_authorization_matches_valley_freedom(self, topology):
        """A segment is GRC-authorized exactly when it is valley-free."""
        graph = topology.graph
        network = PathAwareNetwork(graph)
        network.authorize_grc_segments()
        checked = 0
        for transit in list(graph)[:20]:
            neighbors = sorted(graph.neighbors(transit))
            customers = graph.customers(transit)
            for i, first in enumerate(neighbors):
                for last in neighbors[i + 1 :]:
                    expected = first in customers or last in customers
                    assert network.is_authorized(first, transit, last) == expected
                    checked += 1
        assert checked > 0

    @given(tiny_topologies())
    @settings(max_examples=10, deadline=None)
    def test_forwarding_is_loop_free_and_header_faithful(self, topology):
        graph = topology.graph
        network = PathAwareNetwork(graph)
        network.authorize_grc_segments()
        for agreement in enumerate_mutuality_agreements(graph):
            network.apply_agreement(agreement)
        engine = ForwardingEngine(network)
        sources = list(graph)[:8]
        destinations = list(graph)[-8:]
        for source in sources:
            for destination in destinations:
                if source == destination:
                    continue
                for path in network.available_paths(source, destination, max_hops=3)[:5]:
                    result = engine.forward(Packet(path=path))
                    assert result.delivered
                    assert result.traversed == path
                    assert len(set(result.traversed)) == len(result.traversed)


class TestBeaconingProperties:
    @given(tiny_topologies())
    @settings(max_examples=10, deadline=None)
    def test_every_as_is_reachable_from_the_core(self, topology):
        graph = topology.graph
        store = BeaconingProcess(graph, max_segment_length=6).run()
        core = graph.tier1_ases()
        for asn in graph:
            if asn in core:
                continue
            segments = store.down_segments_of(asn)
            assert segments, f"AS {asn} received no beacon"
            for segment in segments:
                assert segment[0] in core
                assert segment[-1] == asn
                for provider, customer in zip(segment, segment[1:]):
                    assert customer in graph.customers(provider)

    @given(tiny_topologies())
    @settings(max_examples=8, deadline=None)
    def test_constructed_paths_are_always_forwardable(self, topology):
        graph = topology.graph
        store = BeaconingProcess(graph, max_segment_length=6).run()
        network = PathAwareNetwork(graph)
        network.authorize_grc_segments()
        server = PathServer(graph=graph, store=store, network=network)
        engine = ForwardingEngine(network)
        ases = sorted(graph.ases)
        pairs = [(ases[1], ases[-1]), (ases[-2], ases[2]), (ases[0], ases[-3])]
        for source, destination in pairs:
            if source == destination:
                continue
            for path in server.lookup(source, destination, max_paths=5):
                assert engine.forward(Packet(path=path)).delivered
