"""Property-based tests for the BOSCO mechanism (§V-D theorems)."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.bargaining.choices import random_choice_set
from repro.bargaining.distributions import (
    JointUtilityDistribution,
    UniformUtilityDistribution,
)
from repro.bargaining.efficiency import (
    expected_truthful_nash_product,
    nash_product_value,
    price_of_dishonesty,
)
from repro.bargaining.game import BargainingGame
from repro.bargaining.mechanism import BoscoService
from repro.bargaining.strategy import compute_best_response


@st.composite
def bargaining_setups(draw):
    """Random joint uniform distributions and choice-set sizes."""
    low_x = draw(st.floats(min_value=-2.0, max_value=0.0))
    high_x = draw(st.floats(min_value=0.5, max_value=2.0))
    low_y = draw(st.floats(min_value=-2.0, max_value=0.0))
    high_y = draw(st.floats(min_value=0.5, max_value=2.0))
    size = draw(st.integers(min_value=3, max_value=15))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    return low_x, high_x, low_y, high_y, size, seed


def build_game(low_x, high_x, low_y, high_y, size, seed):
    distribution = JointUtilityDistribution(
        marginal_x=UniformUtilityDistribution(low_x, high_x),
        marginal_y=UniformUtilityDistribution(low_y, high_y),
    )
    rng = np.random.default_rng(seed)
    game = BargainingGame(
        distribution_x=distribution.marginal_x,
        distribution_y=distribution.marginal_y,
        choices_x=random_choice_set(distribution.marginal_x, size, rng),
        choices_y=random_choice_set(distribution.marginal_y, size, rng),
    )
    return distribution, game


def find_equilibrium_or_skip(game):
    """Best-response dynamics can cycle for some random games (the game is
    not a potential game); such draws are skipped — the BOSCO service
    handles them by drawing a fresh choice set, which is tested separately."""
    from repro.bargaining.game import EquilibriumError

    try:
        return game.find_equilibrium()
    except EquilibriumError:
        assume(False)


class TestEquilibriumProperties:
    @given(bargaining_setups())
    @settings(max_examples=25, deadline=None)
    def test_equilibrium_exists_and_pod_is_bounded(self, setup):
        distribution, game = build_game(*setup)
        profile = find_equilibrium_or_skip(game)
        truthful = expected_truthful_nash_product(distribution, grid_size=200)
        if truthful <= 0.0:
            return
        pod = price_of_dishonesty(profile, distribution, truthful_value=truthful)
        assert 0.0 <= pod <= 1.0

    @given(bargaining_setups())
    @settings(max_examples=20, deadline=None)
    def test_individual_rationality_and_soundness_on_samples(self, setup):
        distribution, game = build_game(*setup)
        profile = find_equilibrium_or_skip(game)
        rng = np.random.default_rng(123)
        for ux, uy in distribution.sample(rng, size=50):
            claim_x = profile.strategy_x(float(ux))
            claim_y = profile.strategy_y(float(uy))
            if np.isinf(claim_x) or np.isinf(claim_y) or claim_x + claim_y < 0.0:
                continue
            transfer = (claim_x - claim_y) / 2.0
            # Strong individual rationality (Theorem 1).
            assert ux - transfer >= -1e-9
            assert uy + transfer >= -1e-9
            # Soundness (Theorem 2).
            assert ux + uy >= -1e-9

    @given(bargaining_setups())
    @settings(max_examples=20, deadline=None)
    def test_privacy_no_singleton_equilibrium_intervals(self, setup):
        _, game = build_game(*setup)
        profile = find_equilibrium_or_skip(game)
        for strategy in (profile.strategy_x, profile.strategy_y):
            for index in strategy.equilibrium_choice_indices():
                low, high = strategy.interval(index)
                assert high > low


class TestBestResponseProperties:
    @given(
        st.lists(
            st.floats(min_value=-1.0, max_value=1.0, allow_nan=False), min_size=2, max_size=12
        ),
        st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_best_response_plays_envelope_maximum(self, values, data):
        """The threshold strategy returned by Algorithm 1 always achieves the
        pointwise maximum over the expected-utility lines."""
        from repro.bargaining.choices import ChoiceSet

        unique = sorted(set(round(v, 6) for v in values))
        if len(unique) < 2:
            return
        choices = ChoiceSet.from_values(unique)
        count = len(choices)
        raw_slopes = data.draw(
            st.lists(
                st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
                min_size=count - 1,
                max_size=count - 1,
            )
        )
        slopes = [0.0] + sorted(raw_slopes)
        intercepts = [0.0] + data.draw(
            st.lists(
                st.floats(min_value=-1.0, max_value=1.0, allow_nan=False),
                min_size=count - 1,
                max_size=count - 1,
            )
        )
        strategy = compute_best_response(choices, slopes, intercepts)
        for u in np.linspace(-3.0, 3.0, 31):
            chosen = strategy.choice_index(float(u))
            achieved = slopes[chosen] * u + intercepts[chosen]
            best = max(slopes[i] * u + intercepts[i] for i in range(count))
            assert achieved == pytest.approx(best, abs=1e-6)


class TestNashProductValueProperties:
    @given(
        st.floats(min_value=-2.0, max_value=2.0, allow_nan=False),
        st.floats(min_value=-2.0, max_value=2.0, allow_nan=False),
    )
    @settings(max_examples=100, deadline=None)
    def test_truthful_claims_never_beat_half_surplus_square(self, ux, uy):
        value = nash_product_value(ux, uy, ux, uy)
        if ux + uy >= 0.0:
            assert value == pytest.approx(((ux + uy) / 2.0) ** 2)
        else:
            assert value == 0.0


class TestServiceConfiguration:
    def test_configure_is_deterministic_for_fixed_seed(self):
        distribution = JointUtilityDistribution(
            marginal_x=UniformUtilityDistribution(-1.0, 1.0),
            marginal_y=UniformUtilityDistribution(-1.0, 1.0),
        )
        first = BoscoService(distribution, seed=31).configure(12, trials=4)
        second = BoscoService(distribution, seed=31).configure(12, trials=4)
        assert first.choices_x.values == second.choices_x.values
        assert first.price_of_dishonesty == pytest.approx(second.price_of_dishonesty)
