"""Property-based tests for the path-diversity layer and PAN forwarding."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.agreements import enumerate_mutuality_agreements
from repro.paths.grc import grc_length3_paths, is_grc_conforming_segment
from repro.paths.ma_paths import build_ma_path_index
from repro.paths.metrics import EmpiricalCDF
from repro.routing import ForwardingEngine, Packet, PathAwareNetwork
from repro.topology import generate_topology


@st.composite
def small_topologies(draw):
    """Small random Internet-like topologies (bounded for test speed)."""
    seed = draw(st.integers(min_value=0, max_value=200))
    num_tier2 = draw(st.integers(min_value=3, max_value=8))
    num_tier3 = draw(st.integers(min_value=5, max_value=20))
    num_stubs = draw(st.integers(min_value=10, max_value=40))
    return generate_topology(
        num_tier1=3,
        num_tier2=num_tier2,
        num_tier3=num_tier3,
        num_stubs=num_stubs,
        seed=seed,
    )


class TestPathProperties:
    @given(small_topologies())
    @settings(max_examples=15, deadline=None)
    def test_grc_paths_are_link_connected_and_conforming(self, topology):
        graph = topology.graph
        for source in list(graph)[:15]:
            for path in grc_length3_paths(graph, source):
                assert graph.has_link(path[0], path[1])
                assert graph.has_link(path[1], path[2])
                assert is_grc_conforming_segment(graph, *path)

    @given(small_topologies())
    @settings(max_examples=15, deadline=None)
    def test_ma_paths_are_disjoint_from_grc_paths(self, topology):
        graph = topology.graph
        index = build_ma_path_index(list(enumerate_mutuality_agreements(graph)))
        for source in list(graph)[:15]:
            grc = grc_length3_paths(graph, source)
            assert not (index.direct_paths(source) & grc)

    @given(small_topologies())
    @settings(max_examples=10, deadline=None)
    def test_every_ma_path_becomes_forwardable_once_agreements_applied(self, topology):
        graph = topology.graph
        agreements = list(enumerate_mutuality_agreements(graph))
        network = PathAwareNetwork(graph)
        network.authorize_grc_segments()
        for agreement in agreements:
            network.apply_agreement(agreement)
        engine = ForwardingEngine(network)
        index = build_ma_path_index(agreements)
        checked = 0
        for source in list(graph):
            for path in list(index.all_paths(source))[:5]:
                assert engine.forward(Packet(path=path)).delivered
                checked += 1
            if checked > 60:
                break

    @given(small_topologies())
    @settings(max_examples=10, deadline=None)
    def test_top_n_path_counts_are_monotone_in_n(self, topology):
        graph = topology.graph
        index = build_ma_path_index(list(enumerate_mutuality_agreements(graph)))
        for source in list(graph)[:10]:
            counts = [len(index.top_n_paths(source, n, graph)) for n in (0, 1, 2, 5, 50)]
            assert counts == sorted(counts)


class TestCDFProperties:
    @given(
        st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), max_size=60
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_cdf_is_monotone_and_normalized(self, values):
        cdf = EmpiricalCDF(tuple(values))
        xs, ys = cdf.series()
        assert list(ys) == sorted(ys)
        if values:
            assert ys[-1] == 1.0
            assert cdf.at(cdf.maximum) == 1.0
            assert cdf.fraction_above(cdf.maximum) == 0.0

    @given(
        st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=60,
        ),
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    )
    @settings(max_examples=100, deadline=None)
    def test_fraction_above_plus_at_equals_one(self, values, threshold):
        cdf = EmpiricalCDF(tuple(values))
        assert cdf.at(threshold) + cdf.fraction_above(threshold) == 1.0
