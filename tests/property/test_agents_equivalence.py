"""Mixed-cohort sub-batched negotiation == per-agent scalar reference.

The heterogeneous-marketplace lifecycle flushes every negotiation due
at one virtual instant through :func:`repro.agents.decide_mixed_cohort`
(order-preserving sub-batches, one batched engine call per published
mechanism).  That path is contracted **bit-identical** — never
approximately equal — to :func:`repro.agents.decide_sequential`, the
one-scalar-``negotiate``-per-entry reference.  These properties drive
both paths over random mechanism sets, cohort shapes, and utilities
drawn from the mechanisms' own distributions, comparing outcomes with
``==`` field by field.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.agents import CohortEntry, decide_mixed_cohort, decide_sequential
from repro.bargaining.distributions import paper_distribution_u1
from repro.bargaining.mechanism import BoscoService

#: Small published-mechanism pool shared across examples (configuring a
#: mechanism is the expensive part, and equality of the *decision*
#: paths is what's under test).
_SERVICE = BoscoService(paper_distribution_u1(), seed=9)
_MECHANISMS = {
    width: _SERVICE.configure(width, trials=3) for width in (3, 5, 8)
}


@st.composite
def cohorts(draw):
    size = draw(st.integers(min_value=0, max_value=24))
    return [
        CohortEntry(
            key=draw(st.sampled_from(sorted(_MECHANISMS))),
            utility_x=draw(st.floats(min_value=-1.5, max_value=1.5)),
            utility_y=draw(st.floats(min_value=-1.5, max_value=1.5)),
        )
        for _ in range(size)
    ]


class TestMixedCohortEquivalence:
    @given(entries=cohorts())
    @settings(max_examples=100, deadline=None)
    def test_sub_batched_outcomes_match_the_scalar_reference_bitwise(self, entries):
        batched = decide_mixed_cohort(_MECHANISMS, entries)
        reference = decide_sequential(_MECHANISMS, entries)
        assert len(batched) == len(reference) == len(entries)
        for fast, slow in zip(batched, reference):
            # Exact equality, field by field — floats included.
            assert fast.claim_x == slow.claim_x
            assert fast.claim_y == slow.claim_y
            assert fast.concluded == slow.concluded
            assert fast.transfer_x_to_y == slow.transfer_x_to_y
            assert fast.true_utility_x == slow.true_utility_x
            assert fast.true_utility_y == slow.true_utility_y

    @given(entries=cohorts())
    @settings(max_examples=25, deadline=None)
    def test_outcomes_stay_in_request_order(self, entries):
        outcomes = decide_mixed_cohort(_MECHANISMS, entries)
        for entry, outcome in zip(entries, outcomes):
            assert outcome.true_utility_x == entry.utility_x
            assert outcome.true_utility_y == entry.utility_y


def test_unpublished_mechanism_key_is_rejected():
    entries = [CohortEntry(key=99, utility_x=0.1, utility_y=0.2)]
    with pytest.raises(ValueError, match="unpublished"):
        decide_mixed_cohort(_MECHANISMS, entries)
    with pytest.raises(ValueError, match="unpublished"):
        decide_sequential(_MECHANISMS, entries)
