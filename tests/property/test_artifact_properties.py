"""Property tests: ingestion paths and artifacts are interchangeable.

Two contracts, each over randomized generator topologies:

- the streaming lines→arrays compile is indistinguishable from
  compiling the parsed :class:`~repro.topology.ASGraph` — identical
  CSR arrays and identical source fingerprint;
- a compiled topology published to the artifact store and reopened
  memory-mapped is indistinguishable from the fresh compile — same
  arrays, same fingerprint, and identical
  :class:`~repro.core.PathEngine` outputs, blocked or not.
"""

import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    PathEngine,
    compile_as_rel_lines,
    compile_topology,
    load_artifact,
)
from repro.core.artifacts import ArtifactStore
from repro.topology import generate_topology
from repro.topology.caida import dump_as_rel_lines


@st.composite
def small_topologies(draw):
    """Small random Internet-like topologies (bounded for test speed)."""
    return generate_topology(
        num_tier1=draw(st.integers(min_value=1, max_value=4)),
        num_tier2=draw(st.integers(min_value=3, max_value=8)),
        num_tier3=draw(st.integers(min_value=5, max_value=20)),
        num_stubs=draw(st.integers(min_value=10, max_value=40)),
        seed=draw(st.integers(min_value=0, max_value=500)),
    )


class TestStreamingEquivalence:
    @given(small_topologies())
    @settings(max_examples=10, deadline=None)
    def test_streaming_compile_matches_graph_compile(self, topology):
        graph = topology.graph
        streamed = compile_as_rel_lines(dump_as_rel_lines(graph))
        reference = compile_topology(graph)
        assert streamed.same_arrays(reference)
        assert streamed.source_fingerprint == graph.content_fingerprint()
        assert streamed.detached and not streamed.is_stale()


class TestArtifactEquivalence:
    @given(small_topologies())
    @settings(max_examples=8, deadline=None)
    def test_mmap_view_indistinguishable_from_fresh_compile(self, topology):
        graph = topology.graph
        fresh = compile_topology(graph)
        with tempfile.TemporaryDirectory() as tmp:
            store = ArtifactStore(tmp)
            _, path = store.ensure(graph)
            view = load_artifact(path)
            self._assert_indistinguishable(view, fresh)

    @staticmethod
    def _assert_indistinguishable(view, fresh):
        assert view.same_arrays(fresh)
        assert view.source_fingerprint == fresh.source_fingerprint
        from_view = PathEngine(view)
        from_fresh = PathEngine(fresh)
        assert from_view.counts_by_source() == from_fresh.counts_by_source()
        assert (
            from_view.destination_counts_by_source()
            == from_fresh.destination_counts_by_source()
        )
        # The blocked range sweep agrees too, for an uneven split point.
        n = fresh.n
        split = max(1, n // 3)
        assert (
            from_view.counts_range(0, split).tolist()
            == from_fresh.counts_range(0, split).tolist()
        )
        assert (
            from_view.destination_counts_range(split, n).tolist()
            == from_fresh.destination_counts_range(split, n).tolist()
        )
