"""Property-based tests for pricing, cost, and the agreement-utility layer."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.economics.cost import LinearCost, PowerLawCost, SteppedCapacityCost
from repro.economics.pricing import PowerLawPricing
from repro.economics.traffic import FlowVector
from repro.optimization.cash import optimize_cash_compensation
from repro.optimization.nash import nash_bargaining_solution

volumes = st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False)
utilities = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)


class TestPricingProperties:
    @given(
        st.floats(min_value=0.0, max_value=100.0),
        st.floats(min_value=0.0, max_value=3.0),
        volumes,
        volumes,
    )
    @settings(max_examples=100, deadline=None)
    def test_power_law_pricing_is_monotone(self, alpha, beta, v1, v2):
        pricing = PowerLawPricing(alpha=alpha, beta=beta)
        low, high = sorted((v1, v2))
        assert pricing(low) <= pricing(high) + 1e-9

    @given(st.floats(min_value=0.0, max_value=100.0), volumes)
    @settings(max_examples=100, deadline=None)
    def test_pricing_is_non_negative(self, alpha, volume):
        assert PowerLawPricing(alpha=alpha, beta=1.0)(volume) >= 0.0


class TestCostProperties:
    @given(
        st.sampled_from(
            [
                LinearCost(0.3),
                PowerLawCost(scale=0.1, exponent=1.5),
                SteppedCapacityCost(unit_cost=0.2, step_capacity=10.0, step_cost=5.0),
            ]
        ),
        volumes,
        volumes,
    )
    @settings(max_examples=100, deadline=None)
    def test_cost_functions_are_monotone_and_non_negative(self, cost, v1, v2):
        low, high = sorted((v1, v2))
        assert 0.0 <= cost(low) <= cost(high) + 1e-9


class TestFlowVectorProperties:
    @given(
        st.dictionaries(
            st.integers(min_value=1, max_value=20),
            st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
            max_size=10,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_total_flow_is_half_of_per_neighbor_sum(self, flows):
        vector = FlowVector(flows)
        assert vector.total_flow() == sum(v for v in flows.values() if v > 0.0) / 2.0

    @given(
        st.dictionaries(
            st.integers(min_value=1, max_value=20),
            st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
            max_size=10,
        ),
        st.integers(min_value=1, max_value=20),
        st.floats(min_value=0.0, max_value=1e3, allow_nan=False),
    )
    @settings(max_examples=100, deadline=None)
    def test_add_then_remove_is_identity(self, flows, neighbor, volume):
        vector = FlowVector(flows)
        before = vector.get(neighbor)
        vector.add(neighbor, volume)
        vector.add(neighbor, -volume)
        assert vector.get(neighbor) == pytest_approx(before)


def pytest_approx(value: float, tolerance: float = 1e-6):
    """Tiny local approx helper to avoid importing pytest into hypothesis tests."""
    import pytest

    return pytest.approx(value, abs=tolerance)


class TestBargainingSolutionProperties:
    @given(utilities, utilities)
    @settings(max_examples=200, deadline=None)
    def test_nash_solution_splits_surplus_equally(self, ux, uy):
        outcome = nash_bargaining_solution(ux, uy)
        assert outcome.post_utility_x == pytest_approx(outcome.post_utility_y, 1e-6)
        assert outcome.post_utility_x + outcome.post_utility_y == pytest_approx(
            ux + uy, 1e-6
        )

    @given(utilities, utilities)
    @settings(max_examples=200, deadline=None)
    def test_cash_agreement_concluded_iff_surplus_nonnegative(self, ux, uy):
        result = optimize_cash_compensation(1, 2, ux, uy)
        assert result.concluded == (ux + uy >= 0.0)
        if result.concluded:
            assert result.post_utility_x >= -1e-9
            assert result.post_utility_y >= -1e-9
