"""Engine-vs-reference equivalence for the batched negotiation stack.

The :class:`~repro.bargaining.engine.NegotiationEngine` is contracted to
be **bit-identical** to the per-instance reference path — that is what
keeps seeded Fig. 2 tables and marketplace traces byte-stable when
consumers switch to the batched backend.  These property tests drive
both paths from identical seeds across random distributions,
cardinalities, and trial counts, and compare results with ``==``, never
``approx`` (extending the core-vs-reference pattern of
``test_core_equivalence.py`` to the bargaining layer).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bargaining.choices import random_choice_set
from repro.bargaining.distributions import (
    JointUtilityDistribution,
    TruncatedNormalUtilityDistribution,
    UniformUtilityDistribution,
    paper_distribution_u1,
)
from repro.bargaining.engine import GameBatch, NegotiationEngine
from repro.bargaining.game import BargainingGame, EquilibriumError
from repro.bargaining.mechanism import BoscoService
from repro.experiments.fig2_pod import Fig2Config, run_fig2


@st.composite
def joint_distributions(draw):
    low_x = draw(st.floats(min_value=-2.0, max_value=-0.1))
    high_x = draw(st.floats(min_value=0.5, max_value=2.0))
    low_y = draw(st.floats(min_value=-2.0, max_value=-0.1))
    high_y = draw(st.floats(min_value=0.5, max_value=2.0))
    return JointUtilityDistribution(
        marginal_x=UniformUtilityDistribution(low_x, high_x),
        marginal_y=UniformUtilityDistribution(low_y, high_y),
    )


class TestEquilibriumEquivalence:
    @given(
        distribution=joint_distributions(),
        num_choices=st.integers(min_value=2, max_value=12),
        batch_size=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_batched_equilibria_match_the_reference_bitwise(
        self, distribution, num_choices, batch_size, seed
    ):
        rng = np.random.default_rng(seed)
        pairs = [
            (
                random_choice_set(distribution.marginal_x, num_choices, rng),
                random_choice_set(distribution.marginal_y, num_choices, rng),
            )
            for _ in range(batch_size)
        ]
        batch = GameBatch.from_choice_sets(distribution, pairs)
        equilibria = NegotiationEngine().solve(batch)
        for index, (choices_x, choices_y) in enumerate(pairs):
            game = BargainingGame(
                distribution_x=distribution.marginal_x,
                distribution_y=distribution.marginal_y,
                choices_x=choices_x,
                choices_y=choices_y,
            )
            try:
                reference = game.find_equilibrium()
            except EquilibriumError:
                assert not equilibria.converged[index]
                continue
            assert equilibria.converged[index]
            profile = equilibria.profile(batch, index)
            assert profile.strategy_x.thresholds == reference.strategy_x.thresholds
            assert profile.strategy_y.thresholds == reference.strategy_y.thresholds


class TestServiceEquivalence:
    @given(
        distribution=joint_distributions(),
        num_choices=st.integers(min_value=2, max_value=10),
        trials=st.integers(min_value=1, max_value=12),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_pod_statistics_are_identical(
        self, distribution, num_choices, trials, seed
    ):
        reference = BoscoService(distribution, seed=seed, backend="reference")
        batched = BoscoService(distribution, seed=seed, backend="batched")
        try:
            expected = reference.pod_statistics(num_choices, trials=trials)
        except EquilibriumError:
            with_error = False
            try:
                batched.pod_statistics(num_choices, trials=trials)
            except EquilibriumError:
                with_error = True
            assert with_error
            return
        assert batched.pod_statistics(num_choices, trials=trials) == expected
        assert batched.skipped_trials == reference.skipped_trials

    @given(
        num_choices=st.integers(min_value=2, max_value=10),
        trials=st.integers(min_value=1, max_value=10),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_configure_picks_the_identical_mechanism(self, num_choices, trials, seed):
        distribution = paper_distribution_u1()
        reference = BoscoService(distribution, seed=seed, backend="reference")
        batched = BoscoService(distribution, seed=seed, backend="batched")
        expected = reference.configure(num_choices, trials=trials)
        actual = batched.configure(num_choices, trials=trials)
        assert actual.choices_x.values == expected.choices_x.values
        assert actual.choices_y.values == expected.choices_y.values
        assert (
            actual.equilibrium.strategy_x.thresholds
            == expected.equilibrium.strategy_x.thresholds
        )
        assert (
            actual.equilibrium.strategy_y.thresholds
            == expected.equilibrium.strategy_y.thresholds
        )
        assert actual.price_of_dishonesty == expected.price_of_dishonesty
        assert actual.expected_nash_product == expected.expected_nash_product

    def test_generic_kernel_distributions_are_identical_too(self):
        # Non-uniform marginals take the GenericKernel fallback, which
        # must be just as exact as the closed-form uniform path.
        distribution = JointUtilityDistribution(
            marginal_x=TruncatedNormalUtilityDistribution(0.1, 0.5, -1.0, 1.0),
            marginal_y=TruncatedNormalUtilityDistribution(-0.1, 0.4, -1.0, 1.0),
        )
        reference = BoscoService(distribution, seed=5, backend="reference")
        batched = BoscoService(distribution, seed=5, backend="batched")
        assert batched.pod_statistics(6, trials=6) == reference.pod_statistics(
            6, trials=6
        )


class TestFig2Equivalence:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=5, deadline=None)
    def test_fig2_tables_are_byte_identical_across_backends(self, seed):
        config = Fig2Config(choice_counts=(5, 12), trials=6, seed=seed)
        batched = run_fig2(config)
        reference = run_fig2(
            Fig2Config(choice_counts=(5, 12), trials=6, seed=seed, backend="reference")
        )
        assert batched.rows == reference.rows
        assert batched.report() == reference.report()
