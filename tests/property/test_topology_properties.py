"""Property-based tests for the topology substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology import ASGraph, Relationship
from repro.topology.caida import dump_as_rel_lines, parse_as_rel_lines
from repro.topology.relationships import Link


def link_strategy(max_asn: int = 30):
    """Random links over a bounded AS-number universe."""
    pair = st.tuples(
        st.integers(min_value=1, max_value=max_asn),
        st.integers(min_value=1, max_value=max_asn),
    ).filter(lambda p: p[0] != p[1])
    relationship = st.sampled_from(
        [Relationship.PROVIDER_TO_CUSTOMER, Relationship.PEER_TO_PEER]
    )
    return st.tuples(pair, relationship)


def build_graph(links) -> ASGraph:
    """Add links, skipping the ones that conflict with earlier ones."""
    graph = ASGraph()
    for (first, second), relationship in links:
        if graph.has_link(first, second):
            continue
        graph.add_link(Link(first, second, relationship))
    return graph


class TestGraphProperties:
    @given(st.lists(link_strategy(), max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_neighbor_sets_partition_the_neighborhood(self, links):
        graph = build_graph(links)
        for asn in graph:
            providers = graph.providers(asn)
            peers = graph.peers(asn)
            customers = graph.customers(asn)
            assert providers | peers | customers == graph.neighbors(asn)
            assert not providers & peers
            assert not providers & customers
            assert not peers & customers

    @given(st.lists(link_strategy(), max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_relationships_are_symmetric(self, links):
        graph = build_graph(links)
        for asn in graph:
            for provider in graph.providers(asn):
                assert asn in graph.customers(provider)
            for customer in graph.customers(asn):
                assert asn in graph.providers(customer)
            for peer in graph.peers(asn):
                assert asn in graph.peers(peer)

    @given(st.lists(link_strategy(), max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_link_count_matches_neighbor_degrees(self, links):
        graph = build_graph(links)
        assert sum(graph.degree(asn) for asn in graph) == 2 * graph.num_links()

    @given(st.lists(link_strategy(), max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_caida_roundtrip_preserves_topology(self, links):
        graph = build_graph(links)
        restored = parse_as_rel_lines(dump_as_rel_lines(graph))
        assert restored.ases == graph.ases
        assert set(restored.links) == set(graph.links)

    @given(st.lists(link_strategy(), max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_customer_cone_contains_direct_customers(self, links):
        graph = build_graph(links)
        for asn in graph:
            cone = graph.customer_cone(asn)
            assert asn in cone
            assert graph.customers(asn) <= cone

    @given(st.lists(link_strategy(), max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_copy_equals_original(self, links):
        graph = build_graph(links)
        clone = graph.copy()
        assert clone.ases == graph.ases
        assert set(clone.links) == set(graph.links)
