"""Property tests: the compiled core exactly matches the naive reference.

The compiled :class:`~repro.core.CompiledTopology` /
:class:`~repro.core.PathEngine` pair is a pure performance layer — on
any topology it must reproduce the dict/set reference implementations
bit-for-bit.  These tests drive randomized generator topologies through
both and assert set-level equality of path sets, destination sets, and
counts, plus the invalidation contract under link failure/recovery
churn.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PathEngine, compile_topology, path_engine_for
from repro.paths.grc import iter_grc_length3_paths
from repro.topology import generate_topology


@st.composite
def small_topologies(draw):
    """Small random Internet-like topologies (bounded for test speed)."""
    seed = draw(st.integers(min_value=0, max_value=500))
    num_tier2 = draw(st.integers(min_value=3, max_value=8))
    num_tier3 = draw(st.integers(min_value=5, max_value=20))
    num_stubs = draw(st.integers(min_value=10, max_value=40))
    return generate_topology(
        num_tier1=draw(st.integers(min_value=1, max_value=4)),
        num_tier2=num_tier2,
        num_tier3=num_tier3,
        num_stubs=num_stubs,
        seed=seed,
    )


def _naive_paths(graph, source):
    return frozenset(iter_grc_length3_paths(graph, source))


class TestCompiledTopologyEquivalence:
    @given(small_topologies())
    @settings(max_examples=12, deadline=None)
    def test_adjacency_and_roles_match_the_graph(self, topology):
        graph = topology.graph
        compiled = compile_topology(graph)
        for asn in graph:
            assert compiled.neighbors(asn) == graph.neighbors(asn)
            assert compiled.customers(asn) == graph.customers(asn)
            assert compiled.peers(asn) == graph.peers(asn)
            assert compiled.providers(asn) == graph.providers(asn)
            for neighbor in graph.neighbors(asn):
                assert compiled.role_of(asn, neighbor) is graph.role_of(asn, neighbor)


class TestPathEngineEquivalence:
    @given(small_topologies())
    @settings(max_examples=12, deadline=None)
    def test_paths_destinations_and_counts_match_the_reference(self, topology):
        graph = topology.graph
        engine = PathEngine(compile_topology(graph))
        counts = engine.counts_by_source()
        destination_counts = engine.destination_counts_by_source()
        for source in graph:
            naive = _naive_paths(graph, source)
            assert engine.paths(source) == naive
            assert engine.destinations(source) == {p[2] for p in naive}
            assert counts[source] == len(naive)
            assert destination_counts[source] == len({p[2] for p in naive})

    @given(small_topologies(), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=12, deadline=None)
    def test_paths_between_matches_the_reference(self, topology, pair_seed):
        graph = topology.graph
        engine = PathEngine(compile_topology(graph))
        rng = random.Random(pair_seed)
        ases = sorted(graph.ases)
        for _ in range(25):
            source, destination = rng.sample(ases, 2)
            expected = frozenset(
                p for p in _naive_paths(graph, source) if p[2] == destination
            )
            assert engine.paths_between(source, destination) == expected


class TestChurnInvalidation:
    @given(small_topologies(), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=8, deadline=None)
    def test_engine_tracks_link_failure_and_recovery_churn(self, topology, churn_seed):
        """Remove and re-add links; the shared engine must stay exact."""
        graph = topology.graph
        rng = random.Random(churn_seed)
        links = list(graph.links)
        sample = sorted(graph.ases)
        sample = sample[:: max(1, len(sample) // 12)]  # spread probe sources

        removed = []
        for _ in range(6):
            if removed and rng.random() < 0.4:
                link = removed.pop(rng.randrange(len(removed)))
                graph.add_link(link)
            else:
                link = links[rng.randrange(len(links))]
                if not graph.has_link(link.first, link.second):
                    continue
                graph.remove_link(link.first, link.second)
                removed.append(link)
            engine = path_engine_for(graph)
            for source in sample:
                assert engine.paths(source) == _naive_paths(graph, source)
                assert engine.count(source) == len(_naive_paths(graph, source))
