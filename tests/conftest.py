"""Shared fixtures for the test suite.

The central fixtures are the Fig. 1 topology, default business models on
it, and the worked mutuality-agreement scenario of §III-B2 with
plausible traffic numbers — these are reused by the agreement,
optimization, and integration tests.
"""

from __future__ import annotations

import pytest

from repro.agreements import (
    AgreementScenario,
    SegmentTraffic,
    figure1_mutuality_agreement,
)
from repro.agreements.agreement import PathSegment
from repro.economics import ENDHOSTS, FlowVector, default_business_models
from repro.topology import (
    AS_A,
    AS_B,
    AS_C,
    AS_D,
    AS_E,
    AS_F,
    AS_H,
    AS_I,
    figure1_topology,
    generate_topology,
)


@pytest.fixture(scope="session")
def figure1_graph():
    """The Fig. 1 example topology."""
    return figure1_topology()


@pytest.fixture(scope="session")
def small_topology():
    """A small synthetic Internet-like topology (deterministic seed)."""
    return generate_topology(
        num_tier1=4, num_tier2=12, num_tier3=30, num_stubs=80, seed=42
    )


@pytest.fixture(scope="session")
def medium_topology():
    """A medium synthetic topology for the path-diversity analyses."""
    return generate_topology(
        num_tier1=5, num_tier2=20, num_tier3=60, num_stubs=150, seed=7
    )


@pytest.fixture()
def figure1_businesses(figure1_graph):
    """Default business models for every AS of the Fig. 1 topology."""
    return default_business_models(
        figure1_graph,
        transit_unit_price=1.0,
        endhost_unit_price=1.5,
        internal_unit_cost=0.1,
    )


@pytest.fixture()
def figure1_agreement(figure1_graph):
    """The §III-B2 mutuality agreement a = [D(↑{A}); E(↑{B},→{F})]."""
    return figure1_mutuality_agreement(figure1_graph)


@pytest.fixture()
def figure1_scenario(figure1_agreement):
    """A plausible traffic scenario for the Fig. 1 mutuality agreement.

    The numbers are chosen so that D benefits (it offloads a lot of
    provider traffic and attracts new customer traffic) while E initially
    loses (it forwards much of D's traffic to its own provider B) — the
    asymmetric situation the optimization methods of §IV are designed to
    resolve.
    """
    baseline_d = FlowVector(
        {AS_A: 30.0, AS_H: 20.0, ENDHOSTS: 10.0, AS_E: 5.0, AS_C: 5.0}
    )
    baseline_e = FlowVector(
        {AS_B: 25.0, AS_I: 15.0, ENDHOSTS: 10.0, AS_D: 5.0, AS_F: 5.0}
    )
    segments = [
        SegmentTraffic(
            segment=PathSegment(beneficiary=AS_D, partner=AS_E, target=AS_B),
            rerouted={AS_A: 10.0},
            attracted={ENDHOSTS: 5.0, AS_H: 3.0},
            attracted_limits={ENDHOSTS: 8.0, AS_H: 5.0},
        ),
        SegmentTraffic(
            segment=PathSegment(beneficiary=AS_D, partner=AS_E, target=AS_F),
            rerouted={AS_A: 4.0},
            attracted={AS_H: 2.0},
            attracted_limits={AS_H: 4.0},
        ),
        SegmentTraffic(
            segment=PathSegment(beneficiary=AS_E, partner=AS_D, target=AS_A),
            rerouted={AS_B: 8.0},
            attracted={ENDHOSTS: 4.0, AS_I: 2.0},
            attracted_limits={ENDHOSTS: 6.0, AS_I: 4.0},
        ),
    ]
    return AgreementScenario(
        agreement=figure1_agreement,
        segments=segments,
        baseline={AS_D: baseline_d, AS_E: baseline_e},
    )
