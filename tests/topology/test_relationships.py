"""Unit tests for link relationships and roles."""

import pytest

from repro.topology.relationships import Link, Relationship, Role


class TestRelationship:
    def test_from_caida_provider_customer(self):
        assert Relationship.from_caida(-1) is Relationship.PROVIDER_TO_CUSTOMER

    def test_from_caida_peering(self):
        assert Relationship.from_caida(0) is Relationship.PEER_TO_PEER

    def test_from_caida_unknown_code(self):
        with pytest.raises(ValueError):
            Relationship.from_caida(2)

    def test_to_caida_roundtrip(self):
        for relationship in Relationship:
            assert Relationship.from_caida(relationship.to_caida()) is relationship


class TestRole:
    def test_provider_opposite_is_customer(self):
        assert Role.PROVIDER.opposite is Role.CUSTOMER

    def test_customer_opposite_is_provider(self):
        assert Role.CUSTOMER.opposite is Role.PROVIDER

    def test_peer_opposite_is_peer(self):
        assert Role.PEER.opposite is Role.PEER


class TestLink:
    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            Link(1, 1, Relationship.PEER_TO_PEER)

    def test_peering_link_is_normalized(self):
        link = Link(5, 2, Relationship.PEER_TO_PEER)
        assert link.first == 2
        assert link.second == 5

    def test_peering_links_compare_equal_regardless_of_direction(self):
        assert Link(5, 2, Relationship.PEER_TO_PEER) == Link(2, 5, Relationship.PEER_TO_PEER)

    def test_provider_customer_not_normalized(self):
        link = Link(5, 2, Relationship.PROVIDER_TO_CUSTOMER)
        assert link.provider == 5
        assert link.customer == 2

    def test_provider_accessor_on_peering_raises(self):
        link = Link(1, 2, Relationship.PEER_TO_PEER)
        with pytest.raises(ValueError):
            _ = link.provider

    def test_customer_accessor_on_peering_raises(self):
        link = Link(1, 2, Relationship.PEER_TO_PEER)
        with pytest.raises(ValueError):
            _ = link.customer

    def test_endpoints(self):
        link = Link(3, 7, Relationship.PROVIDER_TO_CUSTOMER)
        assert link.endpoints == frozenset({3, 7})

    def test_other(self):
        link = Link(3, 7, Relationship.PROVIDER_TO_CUSTOMER)
        assert link.other(3) == 7
        assert link.other(7) == 3

    def test_other_with_non_endpoint_raises(self):
        link = Link(3, 7, Relationship.PROVIDER_TO_CUSTOMER)
        with pytest.raises(ValueError):
            link.other(1)

    def test_role_of_provider_customer(self):
        link = Link(3, 7, Relationship.PROVIDER_TO_CUSTOMER)
        assert link.role_of(3) is Role.PROVIDER
        assert link.role_of(7) is Role.CUSTOMER

    def test_role_of_peering(self):
        link = Link(3, 7, Relationship.PEER_TO_PEER)
        assert link.role_of(3) is Role.PEER
        assert link.role_of(7) is Role.PEER

    def test_role_of_non_endpoint_raises(self):
        link = Link(3, 7, Relationship.PEER_TO_PEER)
        with pytest.raises(ValueError):
            link.role_of(5)

    def test_str_representations(self):
        assert "p2c" in str(Link(1, 2, Relationship.PROVIDER_TO_CUSTOMER))
        assert "p2p" in str(Link(1, 2, Relationship.PEER_TO_PEER))
