"""Unit tests for the degree-gravity link-capacity model."""

import pytest

from repro.topology.bandwidth import LinkCapacityModel, degree_gravity_capacities
from repro.topology.fixtures import AS_A, AS_B, AS_D, AS_E, AS_H, figure1_topology
from repro.topology.graph import ASGraph


class TestLinkCapacityModel:
    def test_set_and_get_capacity(self):
        model = LinkCapacityModel()
        model.set_capacity(1, 2, 10.0)
        assert model.capacity(1, 2) == 10.0
        assert model.capacity(2, 1) == 10.0

    def test_negative_capacity_rejected(self):
        model = LinkCapacityModel()
        with pytest.raises(ValueError):
            model.set_capacity(1, 2, -1.0)

    def test_missing_capacity_raises(self):
        model = LinkCapacityModel()
        with pytest.raises(KeyError):
            model.capacity(1, 2)

    def test_path_bandwidth_is_bottleneck(self):
        model = LinkCapacityModel()
        model.set_capacity(1, 2, 10.0)
        model.set_capacity(2, 3, 4.0)
        assert model.path_bandwidth((1, 2, 3)) == 4.0

    def test_trivial_path_bandwidth_is_infinite(self):
        model = LinkCapacityModel()
        assert model.path_bandwidth((1,)) == float("inf")


class TestDegreeGravity:
    def test_capacity_proportional_to_degree_product(self):
        graph = ASGraph()
        graph.add_provider_customer(1, 2)
        graph.add_provider_customer(1, 3)
        graph.add_provider_customer(2, 3)
        model = degree_gravity_capacities(graph, scale=2.0)
        # degrees: 1 -> 2, 2 -> 2, 3 -> 2
        assert model.capacity(1, 2) == pytest.approx(2.0 * 2 * 2)

    def test_every_link_of_figure1_has_capacity(self):
        graph = figure1_topology()
        model = degree_gravity_capacities(graph)
        for link in graph.links:
            assert model.capacity(link.first, link.second) > 0.0

    def test_high_degree_links_have_higher_capacity(self):
        graph = figure1_topology()
        model = degree_gravity_capacities(graph)
        # The A–B core link joins the two highest-degree ASes and must beat
        # the stub link D–H.
        assert model.capacity(AS_A, AS_B) > model.capacity(AS_D, AS_H)

    def test_extra_link_endpoints(self):
        graph = figure1_topology()
        model = degree_gravity_capacities(graph, extra_link_endpoints=((AS_D, AS_B),))
        assert model.capacity(AS_D, AS_B) == pytest.approx(
            graph.degree(AS_D) * graph.degree(AS_B)
        )

    def test_path_bandwidth_uses_weakest_link(self):
        graph = figure1_topology()
        model = degree_gravity_capacities(graph)
        path = (AS_H, AS_D, AS_E)
        expected = min(model.capacity(AS_H, AS_D), model.capacity(AS_D, AS_E))
        assert model.path_bandwidth(path) == expected
