"""Unit tests for the geographic embedding and geodistance computation."""

import math

import pytest

from repro.topology.geography import (
    GeographicEmbedding,
    GeoPoint,
    SyntheticGeographyGenerator,
    centroid,
    haversine_km,
)
from repro.topology.graph import ASGraph


class TestGeoPoint:
    def test_valid_point(self):
        point = GeoPoint(45.0, 90.0)
        assert point.latitude == 45.0

    def test_invalid_latitude(self):
        with pytest.raises(ValueError):
            GeoPoint(91.0, 0.0)

    def test_invalid_longitude(self):
        with pytest.raises(ValueError):
            GeoPoint(0.0, 181.0)


class TestHaversine:
    def test_zero_distance(self):
        point = GeoPoint(47.37, 8.55)
        assert haversine_km(point, point) == pytest.approx(0.0)

    def test_known_distance_zurich_new_york(self):
        zurich = GeoPoint(47.37, 8.55)
        new_york = GeoPoint(40.71, -74.0)
        assert haversine_km(zurich, new_york) == pytest.approx(6_320, rel=0.02)

    def test_symmetry(self):
        a = GeoPoint(10.0, 20.0)
        b = GeoPoint(-30.0, 80.0)
        assert haversine_km(a, b) == pytest.approx(haversine_km(b, a))

    def test_quarter_circumference(self):
        equator = GeoPoint(0.0, 0.0)
        pole = GeoPoint(90.0, 0.0)
        assert haversine_km(equator, pole) == pytest.approx(math.pi * 6371.0 / 2.0, rel=1e-6)


class TestCentroid:
    def test_single_point(self):
        point = GeoPoint(10.0, 20.0)
        assert centroid([point]) == point

    def test_average_of_two_points(self):
        result = centroid([GeoPoint(0.0, 0.0), GeoPoint(10.0, 20.0)])
        assert result.latitude == pytest.approx(5.0)
        assert result.longitude == pytest.approx(10.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            centroid([])


class TestEmbedding:
    @pytest.fixture()
    def line_graph(self):
        graph = ASGraph()
        graph.add_provider_customer(1, 2)
        graph.add_provider_customer(2, 3)
        return graph

    @pytest.fixture()
    def embedding(self, line_graph):
        embedding = GeographicEmbedding()
        embedding.as_locations[1] = GeoPoint(0.0, 0.0)
        embedding.as_locations[2] = GeoPoint(0.0, 10.0)
        embedding.as_locations[3] = GeoPoint(0.0, 20.0)
        embedding.link_locations[frozenset((1, 2))] = (GeoPoint(0.0, 5.0),)
        embedding.link_locations[frozenset((2, 3))] = (GeoPoint(0.0, 15.0),)
        return embedding

    def test_location_lookup(self, embedding):
        assert embedding.location_of(2).longitude == 10.0

    def test_missing_location_raises(self, embedding):
        with pytest.raises(KeyError):
            embedding.location_of(42)

    def test_interconnection_point_fallback_is_midpoint(self, embedding):
        del embedding.link_locations[frozenset((1, 2))]
        (fallback,) = embedding.interconnection_points(1, 2)
        assert fallback.longitude == pytest.approx(5.0)

    def test_path_geodistance_single_link(self, embedding):
        # source -> IXP -> destination along the equator: 5° + 5° of longitude.
        distance = embedding.path_geodistance((1, 2))
        expected = haversine_km(GeoPoint(0, 0), GeoPoint(0, 5)) + haversine_km(
            GeoPoint(0, 5), GeoPoint(0, 10)
        )
        assert distance == pytest.approx(expected)

    def test_path_geodistance_length3(self, embedding):
        distance = embedding.path_geodistance((1, 2, 3))
        expected = (
            haversine_km(GeoPoint(0, 0), GeoPoint(0, 5))
            + haversine_km(GeoPoint(0, 5), GeoPoint(0, 15))
            + haversine_km(GeoPoint(0, 15), GeoPoint(0, 20))
        )
        assert distance == pytest.approx(expected)

    def test_path_geodistance_picks_best_interconnection_point(self, embedding):
        # Add a second, much worse interconnection point; the minimum must win.
        embedding.link_locations[frozenset((1, 2))] = (
            GeoPoint(0.0, 5.0),
            GeoPoint(60.0, 120.0),
        )
        best = embedding.path_geodistance((1, 2, 3))
        only_good = (
            haversine_km(GeoPoint(0, 0), GeoPoint(0, 5))
            + haversine_km(GeoPoint(0, 5), GeoPoint(0, 15))
            + haversine_km(GeoPoint(0, 15), GeoPoint(0, 20))
        )
        assert best == pytest.approx(only_good)

    def test_trivial_path_has_zero_distance(self, embedding):
        assert embedding.path_geodistance((1,)) == 0.0


class TestSyntheticGenerator:
    def test_embeds_every_as_and_link(self, ):
        graph = ASGraph()
        graph.add_provider_customer(1, 2)
        graph.add_peering(2, 3)
        graph.add_provider_customer(1, 3)
        embedding = SyntheticGeographyGenerator(seed=1).embed(graph)
        assert set(embedding.as_locations) == {1, 2, 3}
        assert len(embedding.link_locations) == 3
        for points in embedding.link_locations.values():
            assert 1 <= len(points) <= 3

    def test_deterministic_for_fixed_seed(self):
        graph = ASGraph()
        graph.add_provider_customer(1, 2)
        a = SyntheticGeographyGenerator(seed=9).embed(graph)
        b = SyntheticGeographyGenerator(seed=9).embed(graph)
        assert a.as_locations[1] == b.as_locations[1]
        assert a.link_locations == b.link_locations

    def test_requires_at_least_one_hub(self):
        with pytest.raises(ValueError):
            SyntheticGeographyGenerator(region_hubs=())
