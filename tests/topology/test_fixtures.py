"""Unit tests for the canonical example topologies (Fig. 1 and the gadgets)."""

from repro.topology import (
    AS_A,
    AS_B,
    AS_C,
    AS_D,
    AS_E,
    AS_F,
    AS_G,
    AS_H,
    AS_I,
    FIGURE1_NAMES,
    bad_gadget_topology,
    disagree_topology,
    figure1_sibling_gadget,
    figure1_topology,
)


class TestFigure1:
    def test_has_nine_ases(self):
        assert len(figure1_topology()) == 9

    def test_names_cover_all_ases(self):
        graph = figure1_topology()
        assert set(FIGURE1_NAMES) == set(graph.ases)

    def test_a_and_b_are_peers(self):
        graph = figure1_topology()
        assert AS_B in graph.peers(AS_A)

    def test_d_and_e_relationships_match_figure(self):
        graph = figure1_topology()
        assert graph.providers(AS_D) == frozenset({AS_A})
        assert graph.providers(AS_E) == frozenset({AS_B})
        assert AS_E in graph.peers(AS_D)
        assert AS_C in graph.peers(AS_D)
        assert AS_F in graph.peers(AS_E)
        assert graph.customers(AS_D) == frozenset({AS_H})
        assert graph.customers(AS_E) == frozenset({AS_I})

    def test_stub_ases(self):
        graph = figure1_topology()
        for stub in (AS_G, AS_H, AS_I):
            assert graph.is_stub(stub)

    def test_validates(self):
        figure1_topology().validate()

    def test_tier1_ases_are_a_and_b(self):
        graph = figure1_topology()
        assert graph.tier1_ases() == frozenset({AS_A, AS_B})


class TestGadgets:
    def test_disagree_structure(self):
        gadget = disagree_topology()
        assert gadget.destination == 0
        assert set(gadget.preferences) == {1, 2}
        # Both ASes prefer the route through the other one.
        assert gadget.preferences[1][0] == (1, 2, 0)
        assert gadget.preferences[2][0] == (2, 1, 0)

    def test_bad_gadget_structure(self):
        gadget = bad_gadget_topology()
        assert set(gadget.preferences) == {1, 2, 3}
        for asn in (1, 2, 3):
            assert gadget.graph.has_link(asn, 0)
        assert gadget.graph.has_link(1, 2)
        assert gadget.graph.has_link(2, 3)
        assert gadget.graph.has_link(3, 1)

    def test_figure1_sibling_gadget_uses_figure1(self):
        gadget = figure1_sibling_gadget()
        assert gadget.destination == AS_A
        assert set(gadget.preferences) == {AS_D, AS_E}
        assert len(gadget.graph) == 9

    def test_gadget_preference_paths_start_at_owner(self):
        for gadget in (disagree_topology(), bad_gadget_topology(), figure1_sibling_gadget()):
            for asn, paths in gadget.preferences.items():
                for path in paths:
                    assert path[0] == asn
                    assert path[-1] == gadget.destination
