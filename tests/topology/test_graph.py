"""Unit tests for the mixed AS graph."""

import pytest

from repro.topology import ASGraph, Relationship, Role, TopologyError
from repro.topology.relationships import Link


@pytest.fixture()
def simple_graph():
    graph = ASGraph()
    graph.add_provider_customer(1, 2)
    graph.add_provider_customer(1, 3)
    graph.add_provider_customer(2, 4)
    graph.add_peering(2, 3)
    return graph


class TestConstruction:
    def test_add_as_is_idempotent(self):
        graph = ASGraph()
        graph.add_as(1)
        graph.add_as(1)
        assert len(graph) == 1

    def test_add_links_creates_ases(self, simple_graph):
        assert simple_graph.ases == frozenset({1, 2, 3, 4})

    def test_duplicate_identical_link_is_ignored(self, simple_graph):
        simple_graph.add_provider_customer(1, 2)
        assert simple_graph.num_links() == 4

    def test_conflicting_relationship_rejected(self, simple_graph):
        with pytest.raises(TopologyError):
            simple_graph.add_peering(1, 2)

    def test_conflicting_direction_rejected(self, simple_graph):
        with pytest.raises(TopologyError):
            simple_graph.add_provider_customer(2, 1)

    def test_add_prebuilt_link(self):
        graph = ASGraph()
        graph.add_link(Link(9, 8, Relationship.PROVIDER_TO_CUSTOMER))
        assert graph.providers(8) == frozenset({9})

    def test_remove_link(self, simple_graph):
        simple_graph.remove_link(2, 3)
        assert not simple_graph.has_link(2, 3)
        assert simple_graph.peers(2) == frozenset()

    def test_remove_missing_link_raises(self, simple_graph):
        with pytest.raises(TopologyError):
            simple_graph.remove_link(1, 4)


class TestNeighborSets:
    def test_providers(self, simple_graph):
        assert simple_graph.providers(2) == frozenset({1})
        assert simple_graph.providers(1) == frozenset()

    def test_customers(self, simple_graph):
        assert simple_graph.customers(1) == frozenset({2, 3})
        assert simple_graph.customers(4) == frozenset()

    def test_peers(self, simple_graph):
        assert simple_graph.peers(2) == frozenset({3})
        assert simple_graph.peers(3) == frozenset({2})

    def test_neighbors(self, simple_graph):
        assert simple_graph.neighbors(2) == frozenset({1, 3, 4})

    def test_degree(self, simple_graph):
        assert simple_graph.degree(2) == 3
        assert simple_graph.degree(4) == 1

    def test_unknown_as_raises(self, simple_graph):
        with pytest.raises(TopologyError):
            simple_graph.providers(99)

    def test_role_of(self, simple_graph):
        assert simple_graph.role_of(2, 1) is Role.PROVIDER
        assert simple_graph.role_of(2, 4) is Role.CUSTOMER
        assert simple_graph.role_of(2, 3) is Role.PEER

    def test_role_of_non_neighbor_raises(self, simple_graph):
        with pytest.raises(TopologyError):
            simple_graph.role_of(1, 4)


class TestQueries:
    def test_link_counts(self, simple_graph):
        assert simple_graph.num_links() == 4
        assert simple_graph.num_peering_links() == 1
        assert simple_graph.num_transit_links() == 3

    def test_relationship_lookup(self, simple_graph):
        assert simple_graph.relationship(2, 3) is Relationship.PEER_TO_PEER
        assert simple_graph.relationship(1, 2) is Relationship.PROVIDER_TO_CUSTOMER

    def test_missing_link_lookup_raises(self, simple_graph):
        with pytest.raises(TopologyError):
            simple_graph.link(1, 4)

    def test_is_stub(self, simple_graph):
        assert simple_graph.is_stub(4)
        assert not simple_graph.is_stub(1)

    def test_tier1_ases(self, simple_graph):
        assert simple_graph.tier1_ases() == frozenset({1})

    def test_customer_cone(self, simple_graph):
        assert simple_graph.customer_cone(1) == frozenset({1, 2, 3, 4})
        assert simple_graph.customer_cone(2) == frozenset({2, 4})
        assert simple_graph.customer_cone(4) == frozenset({4})

    def test_iteration_is_sorted(self, simple_graph):
        assert list(simple_graph) == [1, 2, 3, 4]

    def test_contains(self, simple_graph):
        assert 1 in simple_graph
        assert 99 not in simple_graph

    def test_links_are_deterministic(self, simple_graph):
        assert simple_graph.links == simple_graph.links


class TestValidationAndExport:
    def test_validate_accepts_hierarchy(self, simple_graph):
        simple_graph.validate()

    def test_validate_rejects_provider_cycle(self):
        graph = ASGraph()
        graph.add_provider_customer(1, 2)
        graph.add_provider_customer(2, 3)
        graph.add_provider_customer(3, 1)
        with pytest.raises(TopologyError):
            graph.validate()

    def test_to_networkx_preserves_edges(self, simple_graph):
        nx_graph = simple_graph.to_networkx()
        assert nx_graph.number_of_nodes() == 4
        assert nx_graph.number_of_edges() == 4
        assert nx_graph.edges[1, 2]["relationship"] is Relationship.PROVIDER_TO_CUSTOMER

    def test_copy_is_independent(self, simple_graph):
        clone = simple_graph.copy()
        clone.add_provider_customer(3, 5)
        assert 5 not in simple_graph
        assert 5 in clone

    def test_subgraph(self, simple_graph):
        sub = simple_graph.subgraph({1, 2, 4})
        assert sub.ases == frozenset({1, 2, 4})
        assert sub.has_link(1, 2)
        assert sub.has_link(2, 4)
        assert not sub.has_link(2, 3)

    def test_repr_contains_counts(self, simple_graph):
        text = repr(simple_graph)
        assert "ases=4" in text


class TestContentFingerprint:
    def test_insertion_order_independent(self):
        a = ASGraph()
        a.add_provider_customer(1, 2)
        a.add_peering(2, 3)
        b = ASGraph()
        b.add_peering(2, 3)
        b.add_provider_customer(1, 2)
        assert a.content_fingerprint() == b.content_fingerprint()

    def test_changes_on_mutation(self):
        graph = ASGraph()
        graph.add_provider_customer(1, 2)
        before = graph.content_fingerprint()
        graph.add_peering(2, 3)
        with_link = graph.content_fingerprint()
        assert with_link != before
        # Removing the link keeps AS 3 in the graph: same content as a
        # fresh graph built that way, distinct from both earlier states.
        graph.remove_link(2, 3)
        reference = ASGraph()
        reference.add_provider_customer(1, 2)
        reference.add_as(3)
        assert graph.content_fingerprint() == reference.content_fingerprint()
        assert graph.content_fingerprint() != with_link

    def test_direction_matters(self):
        a = ASGraph()
        a.add_provider_customer(1, 2)
        b = ASGraph()
        b.add_provider_customer(2, 1)
        assert a.content_fingerprint() != b.content_fingerprint()

    def test_relationship_matters(self):
        a = ASGraph()
        a.add_provider_customer(1, 2)
        b = ASGraph()
        b.add_peering(1, 2)
        assert a.content_fingerprint() != b.content_fingerprint()

    def test_memo_is_invalidated_by_mutation_count(self):
        graph = ASGraph()
        graph.add_peering(1, 2)
        first = graph.content_fingerprint()
        assert graph.content_fingerprint() is first  # served from the memo
        graph.add_peering(1, 3)
        assert graph.content_fingerprint() != first
