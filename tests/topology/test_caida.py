"""Unit tests for the CAIDA as-rel serialization."""

import pytest

from repro.topology import (
    CaidaFormatError,
    dump_as_rel_lines,
    load_as_rel,
    parse_as_rel_lines,
    save_as_rel,
)
from repro.topology.fixtures import figure1_topology

SAMPLE = """\
# a comment line
1|2|-1
1|3|-1
2|3|0
3|4|-1|mlp
"""


class TestParsing:
    def test_parse_basic_file(self):
        graph = parse_as_rel_lines(SAMPLE.splitlines())
        assert graph.ases == frozenset({1, 2, 3, 4})
        assert graph.customers(1) == frozenset({2, 3})
        assert graph.peers(2) == frozenset({3})
        assert graph.customers(3) == frozenset({4})

    def test_comments_and_blank_lines_ignored(self):
        graph = parse_as_rel_lines(["# only a comment", "", "   "])
        assert len(graph) == 0

    def test_serial2_extra_column_accepted(self):
        graph = parse_as_rel_lines(["10|20|0|bgp"])
        assert graph.peers(10) == frozenset({20})

    def test_too_few_fields_rejected(self):
        with pytest.raises(CaidaFormatError):
            parse_as_rel_lines(["1|2"])

    def test_non_integer_field_rejected(self):
        with pytest.raises(CaidaFormatError):
            parse_as_rel_lines(["1|x|0"])

    def test_unknown_relationship_code_rejected(self):
        with pytest.raises(CaidaFormatError):
            parse_as_rel_lines(["1|2|5"])


class TestHardening:
    def test_self_loop_rejected_with_line_number(self):
        with pytest.raises(CaidaFormatError, match=r"line 2: self-loop link on AS 7"):
            parse_as_rel_lines(["1|2|0", "7|7|-1"])

    def test_conflicting_duplicate_rejected_with_both_line_numbers(self):
        with pytest.raises(
            CaidaFormatError,
            match=r"line 3: conflicting duplicate link.*first declared on line 1",
        ):
            parse_as_rel_lines(["1|2|-1", "3|4|0", "1|2|0"])

    def test_reversed_p2c_is_a_conflict(self):
        # 1|2|-1 makes 1 the provider; 2|1|-1 would make 2 the provider.
        with pytest.raises(CaidaFormatError, match="conflicting duplicate link"):
            parse_as_rel_lines(["1|2|-1", "2|1|-1"])

    def test_identical_duplicate_lines_tolerated(self):
        graph = parse_as_rel_lines(["1|2|-1", "1|2|-1", "2|3|0", "3|2|0"])
        assert graph.customers(1) == frozenset({2})
        assert graph.peers(2) == frozenset({3})
        assert len(graph.links) == 2


class TestRoundTrip:
    def test_dump_and_parse_roundtrip(self):
        original = figure1_topology()
        lines = dump_as_rel_lines(original)
        restored = parse_as_rel_lines(lines)
        assert restored.ases == original.ases
        assert set(restored.links) == set(original.links)

    def test_save_and_load_roundtrip(self, tmp_path):
        original = figure1_topology()
        path = tmp_path / "topology.as-rel.txt"
        save_as_rel(original, path)
        restored = load_as_rel(path)
        assert restored.ases == original.ases
        assert set(restored.links) == set(original.links)

    def test_dump_contains_header_comment(self):
        lines = dump_as_rel_lines(figure1_topology())
        assert lines[0].startswith("#")
