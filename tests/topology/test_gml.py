"""Unit tests for GML topology import/export.

The writer is deterministic and the round trip is lossless: a graph
dumped to GML and re-parsed has the same content fingerprint — the
same digest the as-rel serialization of the same graph produces, so
the artifact store and sweep caches treat both formats as one
topology.
"""

import pytest

from repro.topology import (
    GmlFormatError,
    dump_gml_lines,
    generate_topology,
    load_gml,
    parse_gml,
    save_gml,
)
from repro.topology.fixtures import figure1_topology

SAMPLE = """\
graph [
  directed 1
  node [ id 1 label "1" ]
  node [ id 2 label "2" ]
  node [ id 3 label "3" ]
  edge [ source 1 target 2 relationship "p2c" ]
  edge [ source 2 target 3 relationship "p2p" ]
]
"""


class TestParsing:
    def test_parse_sample(self):
        graph = parse_gml(SAMPLE)
        assert graph.ases == frozenset({1, 2, 3})
        assert graph.customers(1) == frozenset({2})
        assert graph.peers(2) == frozenset({3})

    @pytest.mark.parametrize("synonym", ["p2c", "provider", "transit"])
    def test_transit_relationship_synonyms(self, synonym):
        text = SAMPLE.replace('"p2c"', f'"{synonym}"')
        assert parse_gml(text).customers(1) == frozenset({2})

    @pytest.mark.parametrize("synonym", ["p2p", "peer", "peering"])
    def test_peering_relationship_synonyms(self, synonym):
        text = SAMPLE.replace('"p2p"', f'"{synonym}"')
        assert parse_gml(text).peers(2) == frozenset({3})

    def test_missing_relationship_defaults_to_peering(self):
        text = SAMPLE.replace(' relationship "p2p"', "")
        assert parse_gml(text).peers(2) == frozenset({3})

    def test_isolated_node_preserved(self):
        text = SAMPLE.replace(
            '  node [ id 3 label "3" ]',
            '  node [ id 3 label "3" ]\n  node [ id 9 label "9" ]',
        )
        graph = parse_gml(text)
        assert 9 in graph.ases
        assert graph.neighbors(9) == frozenset()


class TestValidation:
    def test_no_graph_block_rejected(self):
        with pytest.raises(GmlFormatError, match="no 'graph"):
            parse_gml("node [ id 1 ]")

    def test_unknown_relationship_rejected(self):
        with pytest.raises(GmlFormatError, match="relationship"):
            parse_gml(SAMPLE.replace('"p2p"', '"sibling"'))

    def test_duplicate_node_id_rejected(self):
        text = SAMPLE.replace(
            'node [ id 2 label "2" ]', 'node [ id 2 label "2" ]\n  node [ id 2 ]'
        )
        with pytest.raises(GmlFormatError, match="duplicate node id 2"):
            parse_gml(text)

    def test_edge_to_undeclared_node_rejected(self):
        text = SAMPLE.replace("target 3", "target 4")
        with pytest.raises(GmlFormatError):
            parse_gml(text)

    def test_non_integer_node_id_rejected(self):
        with pytest.raises(GmlFormatError, match="not an integer"):
            parse_gml('graph [ node [ id "x" ] ]')


class TestRoundTrip:
    def test_figure1_round_trip_preserves_fingerprint(self):
        original = figure1_topology()
        restored = parse_gml("\n".join(dump_gml_lines(original)) + "\n")
        assert restored.ases == original.ases
        assert set(restored.links) == set(original.links)
        assert restored.content_fingerprint() == original.content_fingerprint()

    def test_paper_scale_round_trip_preserves_fingerprint(self):
        original = generate_topology(
            num_tier1=3, num_tier2=8, num_tier3=25, num_stubs=70, seed=7
        ).graph
        restored = parse_gml("\n".join(dump_gml_lines(original)) + "\n")
        assert restored.content_fingerprint() == original.content_fingerprint()

    def test_save_and_load_round_trip(self, tmp_path):
        original = figure1_topology()
        path = tmp_path / "topology.gml"
        save_gml(original, path)
        restored = load_gml(path)
        assert restored.content_fingerprint() == original.content_fingerprint()

    def test_writer_is_deterministic(self):
        original = figure1_topology()
        assert dump_gml_lines(original) == dump_gml_lines(figure1_topology())
