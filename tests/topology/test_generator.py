"""Unit tests for the synthetic Internet-like topology generator."""

import numpy as np
import pytest

from repro.topology.generator import (
    InternetTopologyGenerator,
    TopologyParameters,
    generate_topology,
)


class TestParameters:
    def test_defaults_are_valid(self):
        TopologyParameters()

    def test_requires_at_least_one_tier1(self):
        with pytest.raises(ValueError):
            TopologyParameters(num_tier1=0)

    def test_rejects_invalid_provider_range(self):
        with pytest.raises(ValueError):
            TopologyParameters(tier2_providers=(3, 1))
        with pytest.raises(ValueError):
            TopologyParameters(stub_providers=(0, 2))

    def test_rejects_invalid_probability(self):
        with pytest.raises(ValueError):
            TopologyParameters(tier2_peering_probability=1.5)


class TestGeneratedStructure:
    @pytest.fixture(scope="class")
    def topology(self):
        return generate_topology(
            num_tier1=5, num_tier2=15, num_tier3=40, num_stubs=120, seed=3
        )

    def test_all_ases_present(self, topology):
        assert len(topology.graph) == 5 + 15 + 40 + 120

    def test_topology_validates(self, topology):
        topology.graph.validate()

    def test_tier1_forms_peering_clique(self, topology):
        tier1 = topology.ases_in_tier(1)
        for index, left in enumerate(tier1):
            for right in tier1[index + 1 :]:
                assert right in topology.graph.peers(left)

    def test_tier1_has_no_providers(self, topology):
        for asn in topology.ases_in_tier(1):
            assert topology.graph.providers(asn) == frozenset()

    def test_every_non_tier1_as_has_a_provider(self, topology):
        for tier in (2, 3, 4):
            for asn in topology.ases_in_tier(tier):
                assert topology.graph.providers(asn), f"AS {asn} in tier {tier} has no provider"

    def test_stubs_have_no_customers(self, topology):
        for asn in topology.ases_in_tier(4):
            assert topology.graph.is_stub(asn)

    def test_tiers_cover_all_ases(self, topology):
        covered = set()
        for tier in (1, 2, 3, 4):
            covered.update(topology.ases_in_tier(tier))
        assert covered == set(topology.graph.ases)

    def test_degree_distribution_is_heavy_tailed(self, topology):
        degrees = sorted(
            (topology.graph.degree(asn) for asn in topology.graph), reverse=True
        )
        # The busiest AS should sit far above the median (IXP peering lifts
        # the median, so the factor is modest), and preferential attachment
        # should concentrate customers on a few large providers.
        assert degrees[0] >= 2 * float(np.median(degrees))
        customer_counts = [
            len(topology.graph.customers(asn)) for asn in topology.graph
        ]
        assert max(customer_counts) >= 5 * float(np.mean(customer_counts))

    def test_peering_links_exist_below_tier1(self, topology):
        tier2 = set(topology.ases_in_tier(2))
        has_tier2_peering = any(
            topology.graph.peers(asn) & tier2 for asn in tier2
        )
        assert has_tier2_peering


class TestDeterminism:
    def test_same_seed_gives_same_topology(self):
        a = generate_topology(num_tier2=10, num_tier3=20, num_stubs=40, seed=11)
        b = generate_topology(num_tier2=10, num_tier3=20, num_stubs=40, seed=11)
        assert set(a.graph.links) == set(b.graph.links)

    def test_different_seed_gives_different_topology(self):
        a = generate_topology(num_tier2=10, num_tier3=20, num_stubs=40, seed=11)
        b = generate_topology(num_tier2=10, num_tier3=20, num_stubs=40, seed=12)
        assert set(a.graph.links) != set(b.graph.links)

    def test_generator_class_and_wrapper_agree(self):
        params = TopologyParameters(
            num_tier1=4, num_tier2=8, num_tier3=16, num_stubs=30, seed=5
        )
        from_class = InternetTopologyGenerator(params).generate()
        from_wrapper = generate_topology(
            num_tier1=4, num_tier2=8, num_tier3=16, num_stubs=30, seed=5
        )
        assert set(from_class.graph.links) == set(from_wrapper.graph.links)
