"""Unit tests for the PAN substrate: segment authorization and path discovery."""

import pytest

from repro.agreements import classic_peering_agreement, figure1_mutuality_agreement
from repro.routing.pan import PathAwareNetwork
from repro.topology import (
    AS_A,
    AS_B,
    AS_D,
    AS_E,
    AS_F,
    AS_G,
    AS_H,
    AS_I,
    degree_gravity_capacities,
    figure1_topology,
)
from repro.topology.geography import SyntheticGeographyGenerator


@pytest.fixture()
def grc_network():
    graph = figure1_topology()
    network = PathAwareNetwork(graph)
    network.authorize_grc_segments()
    return network


class TestAuthorization:
    def test_authorize_segment_requires_links(self):
        network = PathAwareNetwork(figure1_topology())
        with pytest.raises(ValueError):
            network.authorize_segment(AS_H, AS_D, AS_I)  # D–I link does not exist

    def test_grc_segments_include_customer_transit(self, grc_network):
        # H (customer of D) can be reached through D from anyone.
        assert grc_network.is_authorized(AS_A, AS_D, AS_H)
        assert grc_network.is_authorized(AS_E, AS_D, AS_H)

    def test_grc_segments_exclude_peer_to_provider_transit(self, grc_network):
        # D does not forward between its peer E and its provider A under GRC.
        assert not grc_network.is_authorized(AS_E, AS_D, AS_A)
        # E does not forward between its peer D and its provider B.
        assert not grc_network.is_authorized(AS_D, AS_E, AS_B)

    def test_authorization_is_direction_independent(self, grc_network):
        assert grc_network.is_authorized(AS_H, AS_D, AS_A)
        assert grc_network.is_authorized(AS_A, AS_D, AS_H)

    def test_apply_mutuality_agreement_authorizes_new_segments(self, grc_network):
        agreement = figure1_mutuality_agreement(grc_network.graph)
        added = grc_network.apply_agreement(agreement)
        assert added == 3
        assert grc_network.is_authorized(AS_D, AS_E, AS_B)
        assert grc_network.is_authorized(AS_D, AS_E, AS_F)
        assert grc_network.is_authorized(AS_E, AS_D, AS_A)
        assert grc_network.agreements == (agreement,)

    def test_apply_peering_agreement_adds_nothing_beyond_grc(self, grc_network):
        agreement = classic_peering_agreement(grc_network.graph, AS_D, AS_E)
        added = grc_network.apply_agreement(agreement)
        assert added == 0


class TestPathDiscovery:
    def test_is_valid_path_checks_authorization(self, grc_network):
        assert grc_network.is_valid_path((AS_H, AS_D, AS_A))
        assert not grc_network.is_valid_path((AS_D, AS_E, AS_B))
        agreement = figure1_mutuality_agreement(grc_network.graph)
        grc_network.apply_agreement(agreement)
        assert grc_network.is_valid_path((AS_D, AS_E, AS_B))

    def test_is_valid_path_rejects_loops_and_missing_links(self, grc_network):
        assert not grc_network.is_valid_path((AS_D, AS_E, AS_D))
        assert not grc_network.is_valid_path((AS_D, AS_I))
        assert not grc_network.is_valid_path((AS_D,))

    def test_available_paths_grow_with_agreement(self, grc_network):
        before = grc_network.available_paths(AS_D, AS_B, max_hops=3)
        agreement = figure1_mutuality_agreement(grc_network.graph)
        grc_network.apply_agreement(agreement)
        after = grc_network.available_paths(AS_D, AS_B, max_hops=3)
        assert (AS_D, AS_E, AS_B) not in before
        assert (AS_D, AS_E, AS_B) in after
        assert len(after) > len(before)

    def test_available_paths_all_valid(self, grc_network):
        for path in grc_network.available_paths(AS_H, AS_A, max_hops=4):
            assert grc_network.is_valid_path(path)

    def test_unknown_as_rejected(self, grc_network):
        with pytest.raises(ValueError):
            grc_network.available_paths(AS_D, 999)


class TestPathSelection:
    def test_hop_metric(self, grc_network):
        path = grc_network.select_path(AS_H, AS_A, metric="hops")
        assert path == (AS_H, AS_D, AS_A)

    def test_latency_metric_requires_embedding(self, grc_network):
        with pytest.raises(ValueError):
            grc_network.select_path(AS_H, AS_A, metric="latency")

    def test_latency_metric_picks_minimum_geodistance(self, grc_network):
        embedding = SyntheticGeographyGenerator(seed=5).embed(grc_network.graph)
        agreement = figure1_mutuality_agreement(grc_network.graph)
        grc_network.apply_agreement(agreement)
        chosen = grc_network.select_path(
            AS_D, AS_B, metric="latency", embedding=embedding
        )
        available = grc_network.available_paths(AS_D, AS_B, max_hops=3)
        best = min(embedding.path_geodistance(p) for p in available)
        assert embedding.path_geodistance(chosen) == pytest.approx(best)

    def test_bandwidth_metric_picks_maximum_bottleneck(self, grc_network):
        capacities = degree_gravity_capacities(grc_network.graph)
        chosen = grc_network.select_path(
            AS_H, AS_A, metric="bandwidth", capacities=capacities
        )
        available = grc_network.available_paths(AS_H, AS_A, max_hops=3)
        best = max(capacities.path_bandwidth(p) for p in available)
        assert capacities.path_bandwidth(chosen) == pytest.approx(best)

    def test_no_path_returns_none(self):
        network = PathAwareNetwork(figure1_topology())
        # Nothing authorized: multi-hop paths are unavailable.
        assert network.select_path(AS_H, AS_G, metric="hops") is None

    def test_unknown_metric_rejected(self, grc_network):
        with pytest.raises(ValueError):
            grc_network.select_path(AS_H, AS_A, metric="cost")
