"""Unit tests for the BGP path-vector simulator."""

import pytest

from repro.routing.bgp import BGPSimulator
from repro.routing.policies import gadget_policies, gao_rexford_policies
from repro.topology import (
    AS_A,
    AS_B,
    AS_D,
    AS_H,
    bad_gadget_topology,
    disagree_topology,
    figure1_topology,
)


class TestBasicOperation:
    def test_destination_must_exist(self):
        graph = figure1_topology()
        with pytest.raises(ValueError):
            BGPSimulator(graph=graph, destination=999, policies=gao_rexford_policies(graph))

    def test_missing_policies_rejected(self):
        graph = figure1_topology()
        with pytest.raises(ValueError):
            BGPSimulator(graph=graph, destination=AS_A, policies={})

    def test_destination_always_has_its_own_route(self):
        graph = figure1_topology()
        simulator = BGPSimulator(
            graph=graph, destination=AS_A, policies=gao_rexford_policies(graph)
        )
        assert simulator.selected_routes[AS_A] == (AS_A,)

    def test_schedule_must_cover_all_ases(self):
        graph = figure1_topology()
        simulator = BGPSimulator(
            graph=graph, destination=AS_A, policies=gao_rexford_policies(graph)
        )
        with pytest.raises(ValueError):
            simulator.run(schedule=[AS_B])

    def test_reset_clears_routes(self):
        graph = figure1_topology()
        simulator = BGPSimulator(
            graph=graph, destination=AS_A, policies=gao_rexford_policies(graph)
        )
        simulator.run()
        simulator.reset()
        assert simulator.selected_routes[AS_D] is None


class TestGaoRexfordConvergence:
    def test_figure1_converges_to_valid_routes(self):
        graph = figure1_topology()
        simulator = BGPSimulator(
            graph=graph, destination=AS_A, policies=gao_rexford_policies(graph)
        )
        outcome = simulator.run()
        assert outcome.converged
        assert not outcome.oscillation_detected
        for asn, route in outcome.routes.items():
            assert route is not None, f"AS {asn} has no route"
            assert route[0] == asn
            assert route[-1] == AS_A
            assert len(set(route)) == len(route)
            for left, right in zip(route, route[1:]):
                assert graph.has_link(left, right)

    def test_customer_prefers_direct_provider_route(self):
        graph = figure1_topology()
        simulator = BGPSimulator(
            graph=graph, destination=AS_A, policies=gao_rexford_policies(graph)
        )
        outcome = simulator.run()
        # D is a direct customer of A; under GRC it uses the direct route.
        assert outcome.route_of(AS_D) == (AS_D, AS_A)
        assert outcome.route_of(AS_H) == (AS_H, AS_D, AS_A)

    def test_routes_are_valley_free(self):
        """Under GRC policies, no selected route contains a valley."""
        graph = figure1_topology()
        for destination in graph:
            simulator = BGPSimulator(
                graph=graph, destination=destination, policies=gao_rexford_policies(graph)
            )
            outcome = simulator.run()
            assert outcome.converged
            for asn, route in outcome.routes.items():
                if route is None or len(route) < 3:
                    continue
                for i in range(1, len(route) - 1):
                    transit = route[i]
                    before, after = route[i - 1], route[i + 1]
                    customers = graph.customers(transit)
                    assert before in customers or after in customers, (
                        f"valley at {transit} on route {route}"
                    )

    def test_grc_converges_on_generated_topology(self, small_topology):
        graph = small_topology.graph
        destination = sorted(graph.tier1_ases())[0]
        simulator = BGPSimulator(
            graph=graph, destination=destination, policies=gao_rexford_policies(graph)
        )
        outcome = simulator.run(max_rounds=300)
        assert outcome.converged


class TestGadgets:
    def test_disagree_converges(self):
        gadget = disagree_topology()
        simulator = BGPSimulator(
            graph=gadget.graph,
            destination=gadget.destination,
            policies=gadget_policies(gadget.graph, gadget.preferences),
        )
        outcome = simulator.run(seed=0)
        assert outcome.converged

    def test_disagree_outcome_depends_on_schedule(self):
        gadget = disagree_topology()
        results = set()
        for schedule in ([1, 2], [2, 1]):
            simulator = BGPSimulator(
                graph=gadget.graph,
                destination=gadget.destination,
                policies=gadget_policies(gadget.graph, gadget.preferences),
            )
            outcome = simulator.run(schedule=schedule)
            assert outcome.converged
            results.add(tuple(sorted(outcome.routes.items())))
        assert len(results) == 2

    def test_bad_gadget_oscillates(self):
        gadget = bad_gadget_topology()
        simulator = BGPSimulator(
            graph=gadget.graph,
            destination=gadget.destination,
            policies=gadget_policies(gadget.graph, gadget.preferences),
        )
        outcome = simulator.run(seed=0, max_rounds=200)
        assert not outcome.converged
        assert outcome.oscillation_detected

    def test_bad_gadget_oscillates_under_every_schedule(self):
        gadget = bad_gadget_topology()
        for seed in range(4):
            simulator = BGPSimulator(
                graph=gadget.graph,
                destination=gadget.destination,
                policies=gadget_policies(gadget.graph, gadget.preferences),
            )
            outcome = simulator.run(seed=seed, max_rounds=200)
            assert not outcome.converged
