"""Unit tests for the convergence analysis layer (§II)."""

from repro.routing.convergence import (
    analyze_gadget,
    analyze_grc,
    degrade_by_link_failure,
)
from repro.topology import (
    AS_A,
    bad_gadget_topology,
    disagree_topology,
    figure1_sibling_gadget,
    figure1_topology,
)


class TestAnalyzeGadget:
    def test_disagree_is_nondeterministic(self):
        report = analyze_gadget(disagree_topology(), num_schedules=8)
        assert report.always_converged
        assert not report.any_oscillation
        assert report.distinct_stable_states >= 2
        assert report.is_nondeterministic

    def test_bad_gadget_oscillates(self):
        report = analyze_gadget(bad_gadget_topology(), num_schedules=6)
        assert report.any_oscillation
        assert not report.always_converged
        assert not report.is_nondeterministic

    def test_figure1_sibling_gadget_converges_but_depends_on_timing(self):
        report = analyze_gadget(figure1_sibling_gadget(), num_schedules=8)
        assert report.always_converged
        # The paper calls this the "slightly extended DISAGREE": multiple
        # stable states are possible, so the outcome is timing-dependent.
        assert report.distinct_stable_states >= 1


class TestAnalyzeGrc:
    def test_grc_always_converges_on_figure1(self):
        report = analyze_grc(figure1_topology(), AS_A, num_schedules=4)
        assert report.always_converged
        assert not report.any_oscillation
        assert report.distinct_stable_states == 1

    def test_grc_always_converges_on_generated_topology(self, small_topology):
        graph = small_topology.graph
        destination = sorted(graph.tier1_ases())[0]
        report = analyze_grc(graph, destination, num_schedules=2)
        assert report.always_converged


class TestLinkFailureDegradation:
    def test_failed_link_removed_from_topology_and_preferences(self):
        gadget = disagree_topology()
        degraded = degrade_by_link_failure(gadget, 1, 2)
        assert not degraded.graph.has_link(1, 2)
        # Paths using the failed link are dropped from the preferences.
        assert (1, 2, 0) not in degraded.preferences[1]
        assert (1, 0) in degraded.preferences[1]
        assert "failed" in degraded.name

    def test_degraded_disagree_converges_deterministically(self):
        gadget = disagree_topology()
        degraded = degrade_by_link_failure(gadget, 1, 2)
        report = analyze_gadget(degraded, num_schedules=4)
        assert report.always_converged
        assert report.distinct_stable_states == 1
