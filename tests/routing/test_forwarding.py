"""Unit tests for packet forwarding along source-selected paths."""

import pytest

from repro.agreements import figure1_mutuality_agreement
from repro.routing.forwarding import DropReason, ForwardingEngine, Packet
from repro.routing.pan import PathAwareNetwork
from repro.topology import AS_A, AS_B, AS_D, AS_E, AS_H, AS_I, figure1_topology


@pytest.fixture()
def network():
    network = PathAwareNetwork(figure1_topology())
    network.authorize_grc_segments()
    return network


@pytest.fixture()
def engine(network):
    return ForwardingEngine(network)


class TestForwarding:
    def test_delivery_along_authorized_path(self, engine):
        result = engine.forward(Packet(path=(AS_H, AS_D, AS_A)))
        assert result.delivered
        assert result.hops == 2
        assert result.traversed == (AS_H, AS_D, AS_A)
        assert result.drop_reason is None

    def test_single_link_path(self, engine):
        result = engine.forward(Packet(path=(AS_D, AS_A)))
        assert result.delivered
        assert result.hops == 1

    def test_unauthorized_segment_dropped(self, engine):
        result = engine.forward(Packet(path=(AS_D, AS_E, AS_B)))
        assert not result.delivered
        assert result.drop_reason is DropReason.UNAUTHORIZED_SEGMENT
        assert result.dropped_at == AS_E

    def test_missing_link_dropped(self, engine):
        result = engine.forward(Packet(path=(AS_H, AS_I)))
        assert not result.delivered
        assert result.drop_reason is DropReason.MISSING_LINK

    def test_malformed_path_dropped(self, engine):
        looping = Packet(path=(AS_H, AS_D, AS_H))
        result = engine.forward(looping)
        assert not result.delivered
        assert result.drop_reason is DropReason.MALFORMED_PATH

    def test_agreement_enables_previously_dropped_path(self, network, engine):
        before = engine.forward(Packet(path=(AS_D, AS_E, AS_B)))
        assert not before.delivered
        network.apply_agreement(figure1_mutuality_agreement(network.graph))
        after = engine.forward(Packet(path=(AS_D, AS_E, AS_B)))
        assert after.delivered

    def test_forwarding_never_loops(self, network, engine):
        """Loop freedom: a delivered packet visits every AS at most once, and
        the traversal follows the header exactly — the §II stability property."""
        network.apply_agreement(figure1_mutuality_agreement(network.graph))
        paths = [
            (AS_H, AS_D, AS_A),
            (AS_D, AS_E, AS_B),
            (AS_I, AS_E, AS_D, AS_A),
            (AS_H, AS_D, AS_E, AS_B),
        ]
        for path in paths:
            result = engine.forward(Packet(path=path))
            assert len(set(result.traversed)) == len(result.traversed)
            assert result.traversed == path[: len(result.traversed)]

    def test_forward_many_and_delivery_ratio(self, engine):
        packets = [
            Packet(path=(AS_H, AS_D, AS_A)),
            Packet(path=(AS_D, AS_E, AS_B)),
        ]
        results = engine.forward_many(packets)
        assert [r.delivered for r in results] == [True, False]
        fresh = [
            Packet(path=(AS_H, AS_D, AS_A)),
            Packet(path=(AS_D, AS_E, AS_B)),
        ]
        assert engine.delivery_ratio(fresh) == 0.5

    def test_delivery_ratio_of_empty_batch(self, engine):
        assert engine.delivery_ratio([]) == 0.0

    def test_packet_ids_are_unique(self):
        first = Packet(path=(AS_H, AS_D))
        second = Packet(path=(AS_H, AS_D))
        assert first.packet_id != second.packet_id
