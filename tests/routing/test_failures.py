"""Failure-injection tests for the routing substrates.

The paper motivates path diversity with resilience to link failures: a
PAN end host simply switches to another authorized path, while BGP must
reconverge (and GRC-violating configurations can even degrade into a
BAD GADGET after a failure, §II).
"""

from repro.agreements import figure1_mutuality_agreement
from repro.routing import (
    BGPSimulator,
    DropReason,
    ForwardingEngine,
    Packet,
    PathAwareNetwork,
    analyze_gadget,
)
from repro.routing.convergence import degrade_by_link_failure
from repro.routing.policies import gao_rexford_policies
from repro.topology import (
    AS_A,
    AS_B,
    AS_C,
    AS_D,
    AS_E,
    AS_H,
    bad_gadget_topology,
    figure1_topology,
)


class TestPanFailover:
    def test_failed_link_drops_packets_but_alternative_path_survives(self):
        graph = figure1_topology()
        network = PathAwareNetwork(graph)
        network.authorize_grc_segments()
        network.apply_agreement(figure1_mutuality_agreement(graph))
        engine = ForwardingEngine(network)

        primary = (AS_D, AS_A, AS_B)
        alternative = (AS_D, AS_E, AS_B)
        assert engine.forward(Packet(path=primary)).delivered
        assert engine.forward(Packet(path=alternative)).delivered

        # The provider link D–A fails.
        graph.remove_link(AS_D, AS_A)
        failed = engine.forward(Packet(path=primary))
        assert not failed.delivered
        assert failed.drop_reason is DropReason.MISSING_LINK
        # The MA path does not use the failed link: the end host just
        # switches to it — no protocol convergence involved.
        assert engine.forward(Packet(path=alternative)).delivered

    def test_path_selection_avoids_failed_link(self):
        graph = figure1_topology()
        network = PathAwareNetwork(graph)
        network.authorize_grc_segments()
        network.apply_agreement(figure1_mutuality_agreement(graph))
        graph.remove_link(AS_D, AS_A)
        paths = network.available_paths(AS_D, AS_B, max_hops=3)
        assert paths
        assert all((AS_D, AS_A) != (p[0], p[1]) for p in paths)


class TestBgpAfterFailure:
    def test_grc_loses_reachability_that_an_ma_would_preserve(self):
        """After the A–D link fails, the GRC leave D and H without any route
        to A (their peers will not re-export provider routes), while a
        mutuality-based agreement with peer C restores connectivity in the
        PAN — the resilience benefit the paper's introduction motivates."""
        graph = figure1_topology()
        simulator = BGPSimulator(
            graph=graph, destination=AS_A, policies=gao_rexford_policies(graph)
        )
        before = simulator.run()
        assert before.route_of(AS_H) == (AS_H, AS_D, AS_A)

        failed = figure1_topology()
        failed.remove_link(AS_A, AS_D)
        simulator = BGPSimulator(
            graph=failed, destination=AS_A, policies=gao_rexford_policies(failed)
        )
        after = simulator.run()
        assert after.converged
        # Valley-free routing cannot recover: D's peers C and E only learned
        # their routes to A from providers and will not export them to D.
        assert after.route_of(AS_D) is None
        assert after.route_of(AS_H) is None

        # In a PAN, an MA between D and its peer C authorizes the segment
        # D–C–A, restoring reachability without any routing convergence.
        from repro.agreements import mutuality_agreement

        network = PathAwareNetwork(failed)
        network.authorize_grc_segments()
        agreement = mutuality_agreement(failed, AS_D, AS_C)
        assert agreement is not None
        network.apply_agreement(agreement)
        engine = ForwardingEngine(network)
        assert engine.forward(Packet(path=(AS_D, AS_C, AS_A))).delivered
        assert engine.forward(Packet(path=(AS_H, AS_D, AS_C, AS_A))).delivered

    def test_bad_gadget_remains_broken_after_any_single_peering_failure(self):
        """Removing one peering link from BAD GADGET removes the oscillation
        (the cycle of preferences is broken) — the flip side of §II's point
        that failures can also create gadgets."""
        gadget = bad_gadget_topology()
        for left, right in ((1, 2), (2, 3), (3, 1)):
            degraded = degrade_by_link_failure(gadget, left, right)
            report = analyze_gadget(degraded, num_schedules=4)
            assert report.always_converged
