"""Unit tests for routing policies."""

import pytest

from repro.routing.policies import (
    GaoRexfordPolicy,
    PreferenceListPolicy,
    gadget_policies,
    gao_rexford_policies,
)
from repro.topology import AS_A, AS_B, AS_C, AS_D, AS_E, AS_H, AS_I, figure1_topology


@pytest.fixture()
def graph():
    return figure1_topology()


class TestGaoRexfordPolicy:
    def test_customer_route_preferred_over_peer_route(self, graph):
        policy = GaoRexfordPolicy()
        customer_route = (AS_D, AS_H)
        peer_route = (AS_D, AS_E, AS_I)
        assert policy.rank(AS_D, customer_route, graph) < policy.rank(AS_D, peer_route, graph)

    def test_peer_route_preferred_over_provider_route(self, graph):
        policy = GaoRexfordPolicy()
        peer_route = (AS_D, AS_E, AS_I)
        provider_route = (AS_D, AS_A, AS_B, AS_I)
        assert policy.rank(AS_D, peer_route, graph) < policy.rank(AS_D, provider_route, graph)

    def test_shorter_route_preferred_within_same_class(self, graph):
        policy = GaoRexfordPolicy()
        short = (AS_D, AS_A, AS_B)
        long = (AS_D, AS_A, AS_B, AS_E)
        assert policy.rank(AS_D, short, graph) < policy.rank(AS_D, long, graph)

    def test_own_route_ranks_like_customer_route(self, graph):
        policy = GaoRexfordPolicy()
        assert policy.rank(AS_D, (AS_D,), graph)[0] == 0

    def test_customer_learned_routes_exported_everywhere(self, graph):
        policy = GaoRexfordPolicy()
        customer_route = (AS_D, AS_H)
        assert policy.exports_to(AS_D, AS_A, customer_route, graph)  # to provider
        assert policy.exports_to(AS_D, AS_E, customer_route, graph)  # to peer
        assert policy.exports_to(AS_D, AS_H, customer_route, graph)  # to customer

    def test_peer_learned_routes_only_exported_to_customers(self, graph):
        policy = GaoRexfordPolicy()
        peer_route = (AS_D, AS_E, AS_I)
        assert policy.exports_to(AS_D, AS_H, peer_route, graph)
        assert not policy.exports_to(AS_D, AS_A, peer_route, graph)
        assert not policy.exports_to(AS_D, AS_C, peer_route, graph)

    def test_provider_learned_routes_only_exported_to_customers(self, graph):
        policy = GaoRexfordPolicy()
        provider_route = (AS_D, AS_A, AS_B)
        assert policy.exports_to(AS_D, AS_H, provider_route, graph)
        assert not policy.exports_to(AS_D, AS_E, provider_route, graph)


class TestPreferenceListPolicy:
    def test_listed_paths_rank_by_position(self, graph):
        policy = PreferenceListPolicy(preferences=((AS_D, AS_E, AS_B), (AS_D, AS_A)))
        assert policy.rank(AS_D, (AS_D, AS_E, AS_B), graph) < policy.rank(
            AS_D, (AS_D, AS_A), graph
        )

    def test_unlisted_paths_rank_below_listed(self, graph):
        policy = PreferenceListPolicy(preferences=((AS_D, AS_E, AS_B),))
        assert policy.rank(AS_D, (AS_D, AS_E, AS_B), graph) < policy.rank(
            AS_D, (AS_D, AS_A, AS_B), graph
        )

    def test_exports_everything(self, graph):
        policy = PreferenceListPolicy()
        assert policy.exports_to(AS_D, AS_A, (AS_D, AS_E, AS_B), graph)


class TestPolicyFactories:
    def test_gao_rexford_policies_cover_all_ases(self, graph):
        policies = gao_rexford_policies(graph)
        assert set(policies) == set(graph.ases)

    def test_gadget_policies_mix(self, graph):
        policies = gadget_policies(graph, {AS_D: ((AS_D, AS_E, AS_B),)})
        assert isinstance(policies[AS_D], PreferenceListPolicy)
        assert isinstance(policies[AS_E], GaoRexfordPolicy)
