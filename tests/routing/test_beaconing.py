"""Unit tests for the SCION-style beaconing and path-server substrate."""

import pytest

from repro.agreements import enumerate_mutuality_agreements, figure1_mutuality_agreement
from repro.routing import (
    BeaconingProcess,
    ForwardingEngine,
    Packet,
    PathAwareNetwork,
    PathConstructionBeacon,
    PathServer,
)
from repro.topology import (
    AS_A,
    AS_B,
    AS_D,
    AS_E,
    AS_H,
    AS_I,
    figure1_topology,
    generate_topology,
)


class TestPathConstructionBeacon:
    def test_core_and_last_as(self):
        beacon = PathConstructionBeacon(path=(1, 4, 8))
        assert beacon.core_as == 1
        assert beacon.last_as == 8

    def test_extension(self):
        beacon = PathConstructionBeacon(path=(1, 4))
        assert beacon.extended(8).path == (1, 4, 8)

    def test_loop_rejected(self):
        beacon = PathConstructionBeacon(path=(1, 4))
        with pytest.raises(ValueError):
            beacon.extended(1)
        with pytest.raises(ValueError):
            PathConstructionBeacon(path=(1, 4, 1))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            PathConstructionBeacon(path=())


class TestBeaconingOnFigure1:
    @pytest.fixture(scope="class")
    def store(self):
        return BeaconingProcess(figure1_topology()).run()

    def test_every_as_gets_a_down_segment(self, store):
        graph = figure1_topology()
        for asn in graph:
            if asn in graph.tier1_ases():
                continue
            assert store.down_segments_of(asn), f"AS {asn} unreachable from the core"

    def test_down_segments_follow_provider_customer_links(self, store):
        graph = figure1_topology()
        for asn in graph:
            for segment in store.down_segments_of(asn):
                for provider, customer in zip(segment, segment[1:]):
                    assert customer in graph.customers(provider)

    def test_up_segments_are_reversed_down_segments(self, store):
        down = store.down_segments_of(AS_H)
        up = store.up_segments_of(AS_H)
        assert {tuple(reversed(s)) for s in down} == up

    def test_core_segments_between_a_and_b(self, store):
        assert (AS_A, AS_B) in store.core_segments_between(AS_A, AS_B)
        assert (AS_B, AS_A) in store.core_segments_between(AS_B, AS_A)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            BeaconingProcess(figure1_topology(), max_segment_length=0)
        with pytest.raises(ValueError):
            BeaconingProcess(figure1_topology(), beacons_per_as=0)


class TestPathServer:
    @pytest.fixture()
    def server(self):
        graph = figure1_topology()
        store = BeaconingProcess(graph).run()
        network = PathAwareNetwork(graph)
        network.authorize_grc_segments()
        return PathServer(graph=graph, store=store, network=network), network

    def test_core_path_construction(self, server):
        path_server, _ = server
        paths = path_server.lookup(AS_H, AS_I)
        assert paths
        # The canonical up–core–down combination.
        assert (AS_H, AS_D, AS_A, AS_B, AS_E, AS_I) in paths

    def test_same_endpoint_rejected(self, server):
        path_server, _ = server
        with pytest.raises(ValueError):
            path_server.lookup(AS_H, AS_H)

    def test_constructed_paths_are_forwardable(self, server):
        path_server, network = server
        engine = ForwardingEngine(network)
        for destination in (AS_I, AS_A, AS_B):
            for path in path_server.lookup(AS_H, destination):
                assert engine.forward(Packet(path=path)).delivered

    def test_agreement_shortcut_appears_after_deployment(self, server):
        path_server, network = server
        before = path_server.lookup(AS_D, AS_B)
        assert (AS_D, AS_E, AS_B) not in before
        network.apply_agreement(figure1_mutuality_agreement(network.graph))
        after = path_server.lookup(AS_D, AS_B)
        assert (AS_D, AS_E, AS_B) in after
        # The shortcut is shorter than the up–core route via A.
        assert min(len(p) for p in after) == 3

    def test_direct_link_is_offered(self, server):
        path_server, _ = server
        assert (AS_D, AS_A) in path_server.lookup(AS_D, AS_A)

    def test_core_destination_reached_via_up_and_core_segments(self, server):
        """Core ASes have no down-segments; they act as their own segment."""
        path_server, _ = server
        paths = path_server.lookup(AS_H, AS_B)
        assert (AS_H, AS_D, AS_A, AS_B) in paths

    def test_core_source_reaches_edge_destination(self, server):
        path_server, _ = server
        paths = path_server.lookup(AS_B, AS_H)
        assert (AS_B, AS_A, AS_D, AS_H) in paths

    def test_lookup_respects_max_paths(self, server):
        path_server, _ = server
        assert len(path_server.lookup(AS_H, AS_I, max_paths=1)) <= 1


class TestBeaconingOnGeneratedTopology:
    def test_full_coverage_and_forwardability(self):
        topology = generate_topology(
            num_tier1=3, num_tier2=8, num_tier3=20, num_stubs=50, seed=9
        )
        graph = topology.graph
        store = BeaconingProcess(graph, max_segment_length=6).run()
        network = PathAwareNetwork(graph)
        network.authorize_grc_segments()
        for agreement in enumerate_mutuality_agreements(graph):
            network.apply_agreement(agreement)
        server = PathServer(graph=graph, store=store, network=network)
        engine = ForwardingEngine(network)

        core = sorted(graph.tier1_ases())
        non_core = [asn for asn in graph if asn not in core]
        # Every non-core AS is reachable from the core via beaconing.
        for asn in non_core:
            assert store.down_segments_of(asn)
        # Constructed end-to-end paths forward successfully.
        sources = non_core[:5]
        destinations = non_core[-5:]
        checked = 0
        for source in sources:
            for destination in destinations:
                if source == destination:
                    continue
                for path in server.lookup(source, destination, max_paths=3):
                    assert engine.forward(Packet(path=path)).delivered
                    checked += 1
        assert checked > 0
