"""Unit tests for internal-cost functions."""

import pytest

from repro.economics.cost import (
    AffineCost,
    LinearCost,
    PiecewiseLinearCost,
    PowerLawCost,
    SteppedCapacityCost,
    ZeroCost,
)


class TestSimpleCosts:
    def test_zero_cost(self):
        assert ZeroCost()(0.0) == 0.0
        assert ZeroCost()(1000.0) == 0.0

    def test_linear_cost(self):
        assert LinearCost(unit_cost=0.5)(10.0) == 5.0

    def test_linear_negative_unit_cost_rejected(self):
        with pytest.raises(ValueError):
            LinearCost(unit_cost=-0.1)

    def test_negative_flow_rejected(self):
        with pytest.raises(ValueError):
            LinearCost(unit_cost=1.0)(-1.0)

    def test_affine_cost(self):
        cost = AffineCost(fixed_cost=10.0, unit_cost=2.0)
        assert cost(0.0) == 10.0
        assert cost(5.0) == 20.0

    def test_power_law_cost(self):
        cost = PowerLawCost(scale=1.0, exponent=2.0)
        assert cost(3.0) == 9.0

    def test_power_law_requires_convex_exponent(self):
        with pytest.raises(ValueError):
            PowerLawCost(scale=1.0, exponent=0.5)


class TestSteppedCapacityCost:
    def test_cost_within_first_step(self):
        cost = SteppedCapacityCost(unit_cost=1.0, step_capacity=10.0, step_cost=5.0)
        assert cost(9.0) == 9.0

    def test_cost_jumps_at_step_boundary(self):
        cost = SteppedCapacityCost(unit_cost=1.0, step_capacity=10.0, step_cost=5.0)
        assert cost(10.0) == 15.0
        assert cost(25.0) == 25.0 + 2 * 5.0

    def test_monotone(self):
        cost = SteppedCapacityCost(unit_cost=0.5, step_capacity=7.0, step_cost=3.0)
        flows = [0.0, 3.0, 6.9, 7.0, 13.9, 14.0, 100.0]
        values = [cost(f) for f in flows]
        assert values == sorted(values)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SteppedCapacityCost(unit_cost=1.0, step_capacity=0.0, step_cost=1.0)


class TestPiecewiseLinearCost:
    def test_interpolation(self):
        cost = PiecewiseLinearCost(breakpoints=((0.0, 0.0), (10.0, 5.0), (20.0, 20.0)))
        assert cost(5.0) == pytest.approx(2.5)
        assert cost(15.0) == pytest.approx(12.5)

    def test_extrapolation_beyond_last_breakpoint(self):
        cost = PiecewiseLinearCost(breakpoints=((0.0, 0.0), (10.0, 5.0), (20.0, 20.0)))
        # Last segment slope is 1.5 per unit.
        assert cost(30.0) == pytest.approx(20.0 + 10.0 * 1.5)

    def test_exact_breakpoints(self):
        cost = PiecewiseLinearCost(breakpoints=((0.0, 1.0), (10.0, 6.0)))
        assert cost(0.0) == 1.0
        assert cost(10.0) == 6.0

    def test_requires_increasing_flows(self):
        with pytest.raises(ValueError):
            PiecewiseLinearCost(breakpoints=((0.0, 0.0), (0.0, 1.0)))

    def test_requires_monotone_costs(self):
        with pytest.raises(ValueError):
            PiecewiseLinearCost(breakpoints=((0.0, 5.0), (10.0, 1.0)))

    def test_requires_zero_start(self):
        with pytest.raises(ValueError):
            PiecewiseLinearCost(breakpoints=((1.0, 0.0), (10.0, 1.0)))

    def test_requires_two_breakpoints(self):
        with pytest.raises(ValueError):
            PiecewiseLinearCost(breakpoints=((0.0, 0.0),))
