"""Unit tests for the billing-period traffic time-series model."""

import numpy as np
import pytest

from repro.economics.timeseries import (
    BillingRule,
    DiurnalTrafficModel,
    billed_volume,
    simulate_billing_period,
)


class TestDiurnalTrafficModel:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            DiurnalTrafficModel(mean_volume=-1.0)
        with pytest.raises(ValueError):
            DiurnalTrafficModel(mean_volume=1.0, samples_per_day=0)
        with pytest.raises(ValueError):
            DiurnalTrafficModel(mean_volume=1.0, diurnal_amplitude=1.5)
        with pytest.raises(ValueError):
            DiurnalTrafficModel(mean_volume=1.0, weekend_dip=-0.1)
        with pytest.raises(ValueError):
            DiurnalTrafficModel(mean_volume=1.0, burstiness=-0.1)

    def test_series_length(self):
        model = DiurnalTrafficModel(mean_volume=10.0, samples_per_day=24, days=7)
        samples = model.generate(np.random.default_rng(0))
        assert samples.shape == (24 * 7,)

    def test_mean_close_to_target(self):
        model = DiurnalTrafficModel(mean_volume=10.0, samples_per_day=96, days=28)
        samples = model.generate(np.random.default_rng(1))
        assert float(np.mean(samples)) == pytest.approx(10.0, rel=0.05)

    def test_samples_are_non_negative(self):
        model = DiurnalTrafficModel(mean_volume=5.0, burstiness=0.5)
        samples = model.generate(np.random.default_rng(2))
        assert float(samples.min()) >= 0.0

    def test_zero_mean_gives_zero_series(self):
        model = DiurnalTrafficModel(mean_volume=0.0, samples_per_day=24, days=2)
        samples = model.generate(np.random.default_rng(3))
        assert float(samples.sum()) == 0.0

    def test_peak_hours_carry_more_traffic_than_off_hours(self):
        model = DiurnalTrafficModel(
            mean_volume=10.0, samples_per_day=24, days=14, burstiness=0.0, peak_hour=20.0
        )
        samples = model.generate(np.random.default_rng(4))
        hours = (np.arange(samples.size) % 24).astype(float)
        peak = samples[hours == 20.0].mean()
        trough = samples[hours == 8.0].mean()
        assert peak > trough

    def test_weekends_carry_less_traffic(self):
        model = DiurnalTrafficModel(
            mean_volume=10.0, samples_per_day=24, days=28, burstiness=0.0, weekend_dip=0.4
        )
        samples = model.generate(np.random.default_rng(5))
        day_index = np.arange(samples.size) // 24
        weekday = samples[(day_index % 7) < 5].mean()
        weekend = samples[(day_index % 7) >= 5].mean()
        assert weekend < weekday

    def test_deterministic_for_fixed_seed(self):
        model = DiurnalTrafficModel(mean_volume=3.0, samples_per_day=24, days=3)
        a = model.generate(np.random.default_rng(7))
        b = model.generate(np.random.default_rng(7))
        assert np.allclose(a, b)


class TestBilledVolume:
    def test_average_and_median(self):
        samples = [1.0, 2.0, 3.0, 10.0]
        assert billed_volume(samples, BillingRule.AVERAGE) == pytest.approx(4.0)
        assert billed_volume(samples, BillingRule.MEDIAN) == pytest.approx(2.5)

    def test_percentile_rule(self):
        samples = [float(v) for v in range(1, 101)]
        assert billed_volume(samples, BillingRule.NINETY_FIFTH_PERCENTILE) == 95.0

    def test_empty_series(self):
        assert billed_volume([], BillingRule.AVERAGE) == 0.0

    def test_negative_samples_rejected(self):
        with pytest.raises(ValueError):
            billed_volume([1.0, -1.0], BillingRule.AVERAGE)

    def test_billing_rules_are_ordered_for_bursty_traffic(self):
        """For right-skewed traffic, p95 billing exceeds average billing —
        the headroom argument for flow-volume agreement conditions."""
        model = DiurnalTrafficModel(mean_volume=10.0, burstiness=0.4, days=14)
        samples = model.generate(np.random.default_rng(9))
        p95 = billed_volume(samples, BillingRule.NINETY_FIFTH_PERCENTILE)
        average = billed_volume(samples, BillingRule.AVERAGE)
        assert p95 > average


class TestSimulateBillingPeriod:
    def test_returns_positive_volume(self):
        assert simulate_billing_period(5.0, seed=1) > 0.0

    def test_average_rule_tracks_mean(self):
        volume = simulate_billing_period(
            5.0, rule=BillingRule.AVERAGE, seed=2, days=28, samples_per_day=96
        )
        assert volume == pytest.approx(5.0, rel=0.05)

    def test_p95_exceeds_average(self):
        p95 = simulate_billing_period(5.0, seed=3)
        average = simulate_billing_period(5.0, rule=BillingRule.AVERAGE, seed=3)
        assert p95 > average
