"""Unit tests for the pricing functions of §III-A."""

import pytest

from repro.economics.pricing import (
    CongestionPricing,
    FlatRatePricing,
    NinetyFifthPercentileBilling,
    PerUsagePricing,
    PowerLawPricing,
    SettlementFree,
)


class TestPowerLawPricing:
    def test_flat_rate_special_case(self):
        pricing = PowerLawPricing(alpha=100.0, beta=0.0)
        assert pricing(0.0) == 100.0
        assert pricing(50.0) == 100.0

    def test_per_usage_special_case(self):
        pricing = PowerLawPricing(alpha=2.0, beta=1.0)
        assert pricing(10.0) == 20.0

    def test_superlinear_pricing(self):
        pricing = PowerLawPricing(alpha=1.0, beta=2.0)
        assert pricing(3.0) == 9.0

    def test_negative_parameters_rejected(self):
        with pytest.raises(ValueError):
            PowerLawPricing(alpha=-1.0, beta=1.0)
        with pytest.raises(ValueError):
            PowerLawPricing(alpha=1.0, beta=-1.0)

    def test_negative_volume_rejected(self):
        with pytest.raises(ValueError):
            PowerLawPricing(alpha=1.0, beta=1.0)(-1.0)

    def test_monotone_in_volume(self):
        pricing = PowerLawPricing(alpha=3.0, beta=1.5)
        volumes = [0.0, 1.0, 2.0, 5.0, 10.0]
        charges = [pricing(v) for v in volumes]
        assert charges == sorted(charges)


class TestSimplePricings:
    def test_flat_rate(self):
        assert FlatRatePricing(fee=42.0)(1000.0) == 42.0
        assert FlatRatePricing(fee=42.0)(0.0) == 42.0

    def test_flat_rate_negative_fee_rejected(self):
        with pytest.raises(ValueError):
            FlatRatePricing(fee=-1.0)

    def test_per_usage(self):
        assert PerUsagePricing(unit_price=0.5)(10.0) == 5.0

    def test_per_usage_zero_volume(self):
        assert PerUsagePricing(unit_price=0.5)(0.0) == 0.0

    def test_congestion_pricing_requires_superlinear_exponent(self):
        with pytest.raises(ValueError):
            CongestionPricing(alpha=1.0, beta=1.0)

    def test_congestion_pricing_grows_superlinearly(self):
        pricing = CongestionPricing(alpha=1.0, beta=2.0)
        assert pricing(4.0) == 16.0
        assert pricing(8.0) / pricing(4.0) > 2.0

    def test_settlement_free_is_always_zero(self):
        pricing = SettlementFree()
        assert pricing(0.0) == 0.0
        assert pricing(1e9) == 0.0

    def test_marginal_price_of_linear_pricing(self):
        pricing = PerUsagePricing(unit_price=2.0)
        assert pricing.marginal(10.0) == pytest.approx(2.0, rel=1e-3)


class TestPercentileBilling:
    def test_95th_percentile(self):
        billing = NinetyFifthPercentileBilling()
        samples = list(range(1, 101))
        assert billing.billable_volume([float(s) for s in samples]) == 95.0

    def test_median_billing(self):
        billing = NinetyFifthPercentileBilling(percentile=50.0)
        assert billing.billable_volume([1.0, 2.0, 3.0, 4.0]) == 2.0

    def test_empty_series(self):
        assert NinetyFifthPercentileBilling().billable_volume([]) == 0.0

    def test_negative_sample_rejected(self):
        with pytest.raises(ValueError):
            NinetyFifthPercentileBilling().billable_volume([1.0, -2.0])

    def test_invalid_percentile_rejected(self):
        with pytest.raises(ValueError):
            NinetyFifthPercentileBilling(percentile=0.0)
