"""Unit tests for flow vectors, segment flows, and demand assignment."""

import pytest

from repro.economics.traffic import (
    ENDHOSTS,
    FlowVector,
    NetworkFlows,
    SegmentFlows,
    TrafficMatrix,
    assign_demands,
)


class TestFlowVector:
    def test_set_and_get(self):
        flows = FlowVector()
        flows.set(1, 10.0)
        assert flows.get(1) == 10.0
        assert flows.get(2) == 0.0

    def test_negative_volume_rejected(self):
        with pytest.raises(ValueError):
            FlowVector({1: -1.0})

    def test_add_accumulates(self):
        flows = FlowVector({1: 5.0})
        flows.add(1, 3.0)
        assert flows.get(1) == 8.0

    def test_add_negative_cannot_underflow(self):
        flows = FlowVector({1: 5.0})
        with pytest.raises(ValueError):
            flows.add(1, -6.0)

    def test_add_negative_reduces(self):
        flows = FlowVector({1: 5.0})
        flows.add(1, -2.0)
        assert flows.get(1) == 3.0

    def test_zero_volume_removes_neighbor(self):
        flows = FlowVector({1: 5.0})
        flows.set(1, 0.0)
        assert 1 not in flows.neighbors()

    def test_total_flow_is_half_the_sum(self):
        # 10 units in from the endhosts and 10 units out to the provider
        # is 10 units *through* the AS.
        flows = FlowVector({ENDHOSTS: 10.0, 1: 10.0})
        assert flows.total_flow() == 10.0

    def test_copy_is_independent(self):
        flows = FlowVector({1: 5.0})
        clone = flows.copy()
        clone.add(1, 1.0)
        assert flows.get(1) == 5.0

    def test_equality(self):
        assert FlowVector({1: 5.0}) == FlowVector({1: 5.0})
        assert FlowVector({1: 5.0}) != FlowVector({1: 6.0})

    def test_as_dict(self):
        assert FlowVector({1: 5.0}).as_dict() == {1: 5.0}


class TestSegmentFlows:
    def test_direction_independence(self):
        segments = SegmentFlows()
        segments.set((1, 2, 3), 5.0)
        assert segments.get((3, 2, 1)) == 5.0

    def test_add(self):
        segments = SegmentFlows()
        segments.add((1, 2, 3), 5.0)
        segments.add((3, 2, 1), 2.0)
        assert segments.get((1, 2, 3)) == 7.0

    def test_through(self):
        segments = SegmentFlows()
        segments.set((1, 2, 3), 5.0)
        segments.set((4, 2, 5), 2.0)
        segments.set((1, 3, 4), 9.0)
        assert segments.through(2) == 7.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            SegmentFlows().set((1, 2, 3), -1.0)

    def test_copy(self):
        segments = SegmentFlows()
        segments.set((1, 2, 3), 5.0)
        clone = segments.copy()
        clone.set((1, 2, 3), 1.0)
        assert segments.get((1, 2, 3)) == 5.0


class TestTrafficMatrix:
    def test_set_and_get_demand(self):
        matrix = TrafficMatrix()
        matrix.set_demand(1, 2, 10.0)
        assert matrix.demand(1, 2) == 10.0
        assert matrix.demand(2, 1) == 0.0

    def test_self_demand_rejected(self):
        with pytest.raises(ValueError):
            TrafficMatrix().set_demand(1, 1, 5.0)

    def test_negative_demand_rejected(self):
        with pytest.raises(ValueError):
            TrafficMatrix().set_demand(1, 2, -5.0)

    def test_total_demand(self):
        matrix = TrafficMatrix()
        matrix.set_demand(1, 2, 10.0)
        matrix.set_demand(2, 3, 5.0)
        assert matrix.total_demand() == 15.0

    def test_pairs_sorted(self):
        matrix = TrafficMatrix()
        matrix.set_demand(2, 3, 5.0)
        matrix.set_demand(1, 2, 10.0)
        assert matrix.pairs() == ((1, 2), (2, 3))


class TestAssignDemands:
    def test_transit_as_sees_flow_on_both_sides(self):
        matrix = TrafficMatrix()
        matrix.set_demand(1, 3, 10.0)
        flows = assign_demands({(1, 3): (1, 2, 3)}, matrix)
        assert flows.vector(2).get(1) == 10.0
        assert flows.vector(2).get(3) == 10.0
        assert flows.total_flow(2) == 10.0

    def test_endpoints_see_endhost_flow(self):
        matrix = TrafficMatrix()
        matrix.set_demand(1, 3, 10.0)
        flows = assign_demands({(1, 3): (1, 2, 3)}, matrix)
        assert flows.vector(1).get(ENDHOSTS) == 10.0
        assert flows.vector(3).get(ENDHOSTS) == 10.0

    def test_endhost_termination_can_be_disabled(self):
        matrix = TrafficMatrix()
        matrix.set_demand(1, 3, 10.0)
        flows = assign_demands({(1, 3): (1, 2, 3)}, matrix, endhost_terminated=False)
        assert flows.vector(1).get(ENDHOSTS) == 0.0

    def test_segment_flows_recorded(self):
        matrix = TrafficMatrix()
        matrix.set_demand(1, 4, 3.0)
        flows = assign_demands({(1, 4): (1, 2, 3, 4)}, matrix)
        assert flows.segments.get((1, 2, 3)) == 3.0
        assert flows.segments.get((2, 3, 4)) == 3.0

    def test_missing_route_raises(self):
        matrix = TrafficMatrix()
        matrix.set_demand(1, 3, 10.0)
        with pytest.raises(KeyError):
            assign_demands({}, matrix)

    def test_route_must_match_demand_pair(self):
        matrix = TrafficMatrix()
        matrix.set_demand(1, 3, 10.0)
        with pytest.raises(ValueError):
            assign_demands({(1, 3): (1, 2)}, matrix)

    def test_unknown_as_vector_is_empty(self):
        flows = NetworkFlows()
        assert flows.total_flow(99) == 0.0
