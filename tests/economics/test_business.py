"""Unit tests for the AS business calculation (Eq. 1)."""

import pytest

from repro.economics import (
    ENDHOSTS,
    ASBusiness,
    FlowVector,
    LinearCost,
    PerUsagePricing,
    default_business_models,
)
from repro.topology.fixtures import AS_A, AS_D, AS_H, figure1_topology


@pytest.fixture()
def transit_as_business():
    """A transit AS with one provider (1), one customer (2), and end-hosts."""
    business = ASBusiness(asn=10, internal_cost=LinearCost(0.1))
    business.set_provider_pricing(1, PerUsagePricing(1.0))
    business.set_customer_pricing(2, PerUsagePricing(2.0))
    business.set_customer_pricing(ENDHOSTS, PerUsagePricing(3.0))
    return business


class TestRevenueAndCost:
    def test_revenue_sums_customer_charges(self, transit_as_business):
        flows = FlowVector({2: 10.0, ENDHOSTS: 5.0, 1: 15.0})
        assert transit_as_business.revenue(flows) == pytest.approx(10.0 * 2.0 + 5.0 * 3.0)

    def test_cost_sums_provider_charges_and_internal_cost(self, transit_as_business):
        flows = FlowVector({2: 10.0, ENDHOSTS: 5.0, 1: 15.0})
        # Total flow through the AS = (10 + 5 + 15) / 2 = 15.
        assert transit_as_business.cost(flows) == pytest.approx(15.0 * 1.0 + 15.0 * 0.1)

    def test_utility_is_revenue_minus_cost(self, transit_as_business):
        flows = FlowVector({2: 10.0, ENDHOSTS: 5.0, 1: 15.0})
        expected = transit_as_business.revenue(flows) - transit_as_business.cost(flows)
        assert transit_as_business.utility(flows) == pytest.approx(expected)

    def test_zero_traffic_with_per_usage_prices_has_zero_utility(self, transit_as_business):
        assert transit_as_business.utility(FlowVector()) == 0.0

    def test_utility_delta(self, transit_as_business):
        before = FlowVector({2: 10.0, 1: 10.0})
        after = FlowVector({2: 20.0, 1: 20.0})
        delta = transit_as_business.utility_delta(before, after)
        # Extra 10 units: +20 revenue, -10 provider, -1 internal.
        assert delta == pytest.approx(20.0 - 10.0 - 1.0)

    def test_peer_traffic_contributes_only_internal_cost(self, transit_as_business):
        without_peer = FlowVector({2: 10.0, 1: 10.0})
        with_peer = FlowVector({2: 10.0, 1: 10.0, 99: 4.0})
        difference = transit_as_business.utility(with_peer) - transit_as_business.utility(
            without_peer
        )
        assert difference == pytest.approx(-0.1 * 2.0)


class TestDefaultBusinessModels:
    def test_every_as_gets_a_model(self):
        graph = figure1_topology()
        models = default_business_models(graph)
        assert set(models) == set(graph.ases)

    def test_customer_and_provider_pricing_mirror_topology(self):
        graph = figure1_topology()
        models = default_business_models(graph)
        d_model = models[AS_D]
        assert AS_H in d_model.customer_pricing
        assert ENDHOSTS in d_model.customer_pricing
        assert AS_A in d_model.provider_pricing

    def test_transit_relationship_is_consistent(self):
        """The provider's customer price must equal the customer's provider price."""
        graph = figure1_topology()
        models = default_business_models(graph, transit_unit_price=1.0)
        charge_by_a = models[AS_A].customer_pricing[AS_D](100.0)
        paid_by_d = models[AS_D].provider_pricing[AS_A](100.0)
        assert charge_by_a == pytest.approx(paid_by_d)

    def test_transit_as_profits_when_reselling_transit(self):
        """§III-A example: D's revenue from H and end-hosts must cover A's charges."""
        graph = figure1_topology()
        models = default_business_models(
            graph, transit_unit_price=1.0, endhost_unit_price=1.5, internal_unit_cost=0.1
        )
        # D carries 10 units from H up to provider A.
        flows = FlowVector({AS_H: 10.0, AS_A: 10.0})
        assert models[AS_D].utility(flows) < 0.0  # reselling at the same price loses money
        # With end-host revenue on top, the business is profitable.
        flows_with_endhosts = FlowVector({AS_H: 10.0, AS_A: 20.0, ENDHOSTS: 10.0})
        assert models[AS_D].utility(flows_with_endhosts) > 0.0

    def test_invalid_parameters_rejected(self):
        graph = figure1_topology()
        with pytest.raises(ValueError):
            default_business_models(graph, transit_unit_price=-1.0)
        with pytest.raises(ValueError):
            default_business_models(graph, internal_unit_cost=-0.5)
        with pytest.raises(ValueError):
            default_business_models(graph, tier_discount=1.5)

    def test_wrong_party_business_model(self):
        business = ASBusiness(asn=1)
        assert business.asn == 1
