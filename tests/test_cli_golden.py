"""Golden-file tests: the redesigned CLI's seeded text output is
byte-identical to the pre-redesign renderings.

The files under ``tests/golden/`` were captured by running the CLI *at
the commit before the API redesign* (PR 4 state) with the exact
invocations below.  Every assertion here is a byte comparison of the
full stdout, so any formatting drift — a stray space, a reordered line,
a float formatted differently — fails loudly.

The experiments goldens run the real harness at the default reduced
scale (~40 s each); they are the contract that the structured-section
refactor and the ``--jobs`` merge order preserve the historical report
exactly, so they are worth the time.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.cli import main

GOLDEN_DIR = Path(__file__).parent / "golden"


def golden(name: str) -> str:
    return (GOLDEN_DIR / name).read_text(encoding="utf-8")


def run_cli(capsys, *argv: str) -> str:
    assert main(list(argv)) == 0
    captured = capsys.readouterr()
    return captured.out


@pytest.fixture()
def golden_cwd(tmp_path, monkeypatch):
    """Run from a temp directory so relative paths match the capture."""
    monkeypatch.chdir(tmp_path)
    return tmp_path


class TestFastGoldens:
    def test_topology_output_is_byte_identical(self, golden_cwd, capsys):
        out = run_cli(
            capsys,
            "topology",
            "topo.as-rel.txt",
            "--tier1",
            "3",
            "--tier2",
            "6",
            "--tier3",
            "15",
            "--stubs",
            "40",
            "--seed",
            "3",
        )
        assert out == golden("topology_seed3.txt")

    def test_diversity_output_is_byte_identical(self, golden_cwd, capsys):
        run_cli(
            capsys,
            "topology",
            "topo.as-rel.txt",
            "--tier1",
            "3",
            "--tier2",
            "6",
            "--tier3",
            "15",
            "--stubs",
            "40",
            "--seed",
            "3",
        )
        capsys.readouterr()
        out = run_cli(
            capsys,
            "diversity",
            "--topology",
            "topo.as-rel.txt",
            "--sample-size",
            "15",
            "--seed",
            "1",
        )
        assert out == golden("diversity_sample15_seed1.txt")

    def test_simulate_flash_crowd_is_byte_identical(self, capsys):
        out = run_cli(
            capsys,
            "simulate",
            "--scenario",
            "flash-crowd",
            "--seed",
            "4",
            "--duration",
            "30",
        )
        assert out == golden("simulate_flash_crowd_seed4.txt")

    def test_simulate_failure_churn_is_byte_identical(self, capsys):
        out = run_cli(capsys, "simulate", "--duration", "6", "--seed", "1")
        assert out == golden("simulate_failure_churn_seed1.txt")

    def test_simulate_heterogeneous_summary_is_byte_identical(self, capsys):
        out = run_cli(capsys, "simulate", "--scenario", "marketplace-heterogeneous")
        assert out == golden("simulate_marketplace_heterogeneous_seed2021.txt")

    def test_simulate_heterogeneous_trace_is_byte_identical(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.jsonl"
        run_cli(
            capsys,
            "simulate",
            "--scenario",
            "marketplace-heterogeneous",
            "--trace-out",
            str(trace_path),
        )
        assert trace_path.read_bytes() == (
            GOLDEN_DIR / "trace_marketplace_heterogeneous_seed2021.jsonl"
        ).read_bytes()


class TestExperimentsGoldens:
    """The heavyweight contract: the full seeded harness, both schedules."""

    ARGS = ("experiments", "--seed", "7", "--trials", "3")

    def test_sequential_run_is_byte_identical(self, capsys):
        out = run_cli(capsys, *self.ARGS)
        assert out == golden("experiments_seed7_trials3.txt")

    def test_jobs_2_run_is_byte_identical(self, capsys):
        out = run_cli(capsys, *self.ARGS, "--jobs", "2")
        assert out == golden("experiments_seed7_trials3.txt")
