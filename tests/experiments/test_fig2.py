"""Tests for the Fig. 2 experiment harness (reduced sizes)."""

import pytest

from repro.experiments.fig2_pod import Fig2Config, run_fig2


@pytest.fixture(scope="module")
def result():
    return run_fig2(Fig2Config(choice_counts=(10, 30), trials=8, seed=3))


class TestFig2:
    def test_rows_cover_both_distributions_and_all_cardinalities(self, result):
        combos = {(row.distribution, row.num_choices) for row in result.rows}
        assert combos == {("U(1)", 10), ("U(1)", 30), ("U(2)", 10), ("U(2)", 30)}

    def test_pod_values_in_unit_interval(self, result):
        for row in result.rows:
            assert 0.0 <= row.min_pod <= row.mean_pod <= 1.0

    def test_series_extraction(self, result):
        series = result.series("U(1)", "min")
        assert [w for w, _ in series] == [10, 30]
        with pytest.raises(KeyError):
            result.series("U(1)", "median")

    def test_best_pod_is_minimum_over_w(self, result):
        series = result.series("U(2)", "min")
        assert result.best_pod("U(2)") == pytest.approx(min(v for _, v in series))

    def test_comparisons_and_report_render(self, result):
        comparisons = result.comparisons()
        assert len(comparisons) >= 3
        text = result.report()
        assert "U(1)" in text
        assert "min PoD" in text

    def test_equilibria_use_few_choices(self, result):
        for row in result.rows:
            assert row.mean_equilibrium_choices <= 10.0
