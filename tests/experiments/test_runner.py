"""Tests for the combined experiment runner (tiny configuration)."""

from repro.experiments.fig2_pod import Fig2Config
from repro.experiments.fig3_paths import PathDiversityConfig
from repro.experiments.fig5_geodistance import Fig5Config
from repro.experiments.fig6_bandwidth import Fig6Config
from repro.experiments.runner import RunnerConfig, _stability_section


class TinyRunnerConfig(RunnerConfig):
    """Runner configuration small enough for the test suite."""

    def fig2(self) -> Fig2Config:
        return Fig2Config(choice_counts=(10,), trials=4)

    def diversity(self) -> PathDiversityConfig:
        return PathDiversityConfig(
            num_tier1=3, num_tier2=8, num_tier3=25, num_stubs=70, sample_size=25, seed=1
        )

    def fig5(self) -> Fig5Config:
        return Fig5Config(diversity=self.diversity(), pair_sample_size=10)

    def fig6(self) -> Fig6Config:
        return Fig6Config(diversity=self.diversity(), pair_sample_size=10)


class TestRunnerConfig:
    def test_default_config_sizes(self):
        config = RunnerConfig()
        assert config.fig2().trials < 200
        assert config.diversity().sample_size <= 200

    def test_full_config_matches_paper_scale(self):
        config = RunnerConfig(full=True)
        assert config.fig2().trials == 200
        assert config.diversity().sample_size == 500

    def test_trials_override_reaches_fig2(self):
        """`repro experiments --trials 200` is the paper-scale Fig. 2 run."""
        assert RunnerConfig(trials=200).fig2().trials == 200
        assert RunnerConfig(full=True, trials=13).fig2().trials == 13
        config = RunnerConfig(seed=3, trials=50).fig2()
        assert config.seed == 3
        assert config.trials == 50

    def test_seed_overrides_every_experiment(self):
        config = RunnerConfig(seed=99)
        assert config.fig2().seed == 99
        assert config.diversity().seed == 99
        assert config.fig5().diversity.seed == 99
        assert config.fig5().geography_seed == 99
        assert config.fig6().diversity.seed == 99

    def test_seed_reaches_all_five_figure_configs(self):
        """Regression: fig6 used to silently drop the runner seed override.

        Every figure config must carry the override in *every* seed
        field it owns, not only the shared diversity sub-config.
        """
        config = RunnerConfig(seed=41)
        assert config.fig2().seed == 41  # Fig. 2
        assert config.diversity().seed == 41  # Figs. 3 and 4
        fig5 = config.fig5()  # Fig. 5
        assert fig5.diversity.seed == 41
        assert fig5.geography_seed == 41
        fig6 = config.fig6()  # Fig. 6
        assert fig6.diversity.seed == 41
        assert fig6.sampling_seed == 41
        assert fig6.effective_sampling_seed == 41

    def test_fig6_sampling_seed_defaults_to_the_diversity_seed(self):
        config = RunnerConfig()
        fig6 = config.fig6()
        assert fig6.sampling_seed is None
        assert fig6.effective_sampling_seed == fig6.diversity.seed

    def test_no_seed_keeps_the_per_experiment_defaults(self):
        config = RunnerConfig()
        assert config.fig2().seed == 7
        assert config.diversity().seed == 2021
        assert config.fig5().geography_seed == 11

    def test_seed_composes_with_full(self):
        config = RunnerConfig(full=True, seed=3)
        assert config.fig2().trials == 200
        assert config.fig2().seed == 3
        assert config.diversity().sample_size == 500
        assert config.diversity().seed == 3


class TestStabilitySection:
    def test_section_mentions_both_gadgets(self):
        text = _stability_section()
        assert "DISAGREE" in text
        assert "BAD GADGET" in text
        assert "oscillation detected = True" in text


class TestRunAll:
    def test_combined_report_contains_every_figure(self):
        from repro.experiments.runner import run_all

        report = run_all(TinyRunnerConfig())
        for heading in (
            "§II — BGP stability gadgets",
            "Fig. 2 — Price of Dishonesty",
            "Fig. 3 — length-3 paths per AS",
            "Fig. 4 — nearby destinations per AS",
            "Fig. 5 — geodistance of MA paths",
            "Fig. 6 — bandwidth of MA paths",
        ):
            assert heading in report

    def test_parallel_run_is_byte_identical_to_sequential(self):
        from repro.experiments.runner import run_all

        config = TinyRunnerConfig(seed=13)
        assert run_all(config, jobs=3) == run_all(config, jobs=1)

    def test_jobs_must_be_positive(self):
        import pytest

        from repro.experiments.runner import run_all

        with pytest.raises(ValueError):
            run_all(TinyRunnerConfig(), jobs=0)
