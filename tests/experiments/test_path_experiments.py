"""Tests for the Fig. 3–6 experiment harnesses (reduced sizes)."""

import pytest

from repro.experiments.fig3_paths import PathDiversityConfig, run_fig3
from repro.experiments.fig4_destinations import run_fig4
from repro.experiments.fig5_geodistance import Fig5Config, run_fig5
from repro.experiments.fig6_bandwidth import Fig6Config, run_fig6

SMALL = PathDiversityConfig(
    num_tier1=4, num_tier2=12, num_tier3=40, num_stubs=120, sample_size=40, seed=13
)


@pytest.fixture(scope="module")
def fig3_result():
    return run_fig3(SMALL)


@pytest.fixture(scope="module")
def fig4_result():
    return run_fig4(SMALL)


@pytest.fixture(scope="module")
def fig5_result():
    return run_fig5(Fig5Config(diversity=SMALL, pair_sample_size=20))


@pytest.fixture(scope="module")
def fig6_result():
    return run_fig6(Fig6Config(diversity=SMALL, pair_sample_size=20))


class TestFig3:
    def test_sample_size_respected(self, fig3_result):
        assert len(fig3_result.diversity.records) == 40

    def test_ma_beats_grc(self, fig3_result):
        cdf_grc = fig3_result.diversity.path_cdf("GRC")
        cdf_ma = fig3_result.diversity.path_cdf("MA")
        assert cdf_ma.mean > cdf_grc.mean

    def test_report_and_comparisons_render(self, fig3_result):
        assert "GRC" in fig3_result.report()
        assert len(fig3_result.comparisons()) >= 3

    def test_agreements_enumerated(self, fig3_result):
        assert fig3_result.num_agreements > 0


class TestFig4:
    def test_destination_ordering(self, fig4_result):
        grc = fig4_result.diversity.destination_cdf("GRC")
        ma = fig4_result.diversity.destination_cdf("MA")
        assert ma.mean >= grc.mean

    def test_report_and_comparisons_render(self, fig4_result):
        assert "destinations" in fig4_result.report()
        assert len(fig4_result.comparisons()) >= 2


class TestFig5:
    def test_records_exist(self, fig5_result):
        assert fig5_result.geodistance.records

    def test_condition_ordering(self, fig5_result):
        result = fig5_result.geodistance
        assert result.fraction_of_pairs_improving(
            "min", 1
        ) <= result.fraction_of_pairs_improving("max", 1)

    def test_report_and_comparisons_render(self, fig5_result):
        assert "GRC min" in fig5_result.report()
        assert len(fig5_result.comparisons()) == 3


class TestFig6:
    def test_records_exist(self, fig6_result):
        assert fig6_result.bandwidth.records

    def test_condition_ordering(self, fig6_result):
        result = fig6_result.bandwidth
        assert result.fraction_of_pairs_improving(
            "max", 1
        ) <= result.fraction_of_pairs_improving("min", 1)

    def test_report_and_comparisons_render(self, fig6_result):
        assert "GRC max" in fig6_result.report()
        assert len(fig6_result.comparisons()) == 2
