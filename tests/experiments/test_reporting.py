"""Tests for the reporting helpers."""

from repro.experiments.reporting import (
    PaperComparison,
    format_cdf_series,
    format_comparisons,
    format_table,
)


class TestFormatTable:
    def test_columns_are_aligned(self):
        table = format_table(["name", "value"], [["a", "1"], ["long-name", "2"]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert "long-name" in lines[3]

    def test_empty_rows(self):
        table = format_table(["only", "header"], [])
        assert "only" in table


class TestFormatComparisons:
    def test_renders_title_and_rows(self):
        text = format_comparisons(
            "Fig. X",
            [PaperComparison(metric="m", paper_value="1", measured_value="2", note="n")],
        )
        assert "== Fig. X ==" in text
        assert "measured" in text
        assert "m" in text


class TestFormatCdfSeries:
    def test_empty_series(self):
        assert "(empty)" in format_cdf_series("s", (), ())

    def test_downsampling(self):
        xs = tuple(float(i) for i in range(100))
        ys = tuple((i + 1) / 100 for i in range(100))
        text = format_cdf_series("s", xs, ys, max_points=5)
        assert text.startswith("s: ")
        assert text.count("(") <= 6

    def test_short_series_kept_fully(self):
        text = format_cdf_series("s", (1.0, 2.0), (0.5, 1.0))
        assert text.count("(") == 2
