"""Structured section results and their pure renderers."""

import json

from repro.experiments.reporting import (
    PaperComparison,
    SectionResult,
    SectionSeries,
    SectionTable,
    metric_value,
    render_figure_body,
    render_report,
    render_section,
)


def make_figure_section() -> SectionResult:
    return SectionResult(
        key="figX",
        title="Fig. X — demo",
        comparisons=(
            PaperComparison(metric="m", paper_value="1", measured_value="2"),
        ),
        table=SectionTable(headers=("a", "b"), rows=(("1", "22"),)),
        series_caption="CDF:",
        series=(SectionSeries("s", (1.0, 2.0), (0.5, 1.0)),),
        metrics={"m": 2.0},
    )


class TestMetricValue:
    def test_finite_numbers_pass_through(self):
        assert metric_value(1.5) == 1.5

    def test_non_finite_numbers_become_none(self):
        assert metric_value(float("nan")) is None
        assert metric_value(float("inf")) is None


class TestRenderSection:
    def test_prose_section_renders_header_and_preamble(self):
        section = SectionResult(
            key="stability", title="T", preamble=("one", "two")
        )
        assert render_section(section) == "== T ==\none\ntwo"

    def test_figure_section_layout(self):
        text = render_section(make_figure_section())
        comparison_block, table_block, series_block = text.split("\n\n")
        assert comparison_block.startswith("== Fig. X — demo ==")
        assert table_block.splitlines()[0].startswith("a")
        assert series_block == "CDF:\ns: (1, 0.50), (2, 1.00)"

    def test_series_without_caption_stand_alone(self):
        body = render_figure_body(
            None, "", (SectionSeries("s", (1.0,), (1.0,)),)
        )
        assert body == "s: (1, 1.00)"

    def test_report_wraps_sections_with_the_historical_separators(self):
        a = SectionResult(key="a", title="A", preamble=("x",))
        b = SectionResult(key="b", title="B", preamble=("y",))
        assert render_report([a, b]) == "\n\n== A ==\nx\n\n\n== B ==\ny\n"


class TestSectionStructure:
    def test_runner_sections_are_json_safe(self):
        """Every value inside a section envelope must be strict JSON."""
        from repro.experiments.runner import RunnerConfig, _section_stability

        section = _section_stability(RunnerConfig())
        payload = json.dumps(section.to_json_dict(), allow_nan=False)
        assert SectionResult.from_json_dict(json.loads(payload)) == section

    def test_stability_section_metrics(self):
        from repro.experiments.runner import RunnerConfig, _section_stability

        section = _section_stability(RunnerConfig())
        assert section.metrics["bad_gadget_any_oscillation"] is True
        assert section.comparisons == ()
        assert section.table is None

    def test_fig2_result_exposes_structured_table_and_metrics(self):
        from repro.experiments.fig2_pod import Fig2Config, run_fig2

        result = run_fig2(Fig2Config(choice_counts=(10,), trials=4))
        table = result.table()
        assert table.headers[0] == "distribution"
        assert len(table.rows) == 2  # one per distribution
        metrics = result.metrics()
        assert 0.0 <= metrics["best_pod_u1"] <= 1.0
        # report() is a pure rendering of table()
        assert result.report().splitlines()[0].startswith("distribution")
