"""Tests for the CI benchmark regression gate script."""

import importlib.util
import json
from pathlib import Path

import pytest

_SCRIPT = Path(__file__).resolve().parent.parent / "scripts" / "check_bench_regression.py"
_spec = importlib.util.spec_from_file_location("check_bench_regression", _SCRIPT)
check_bench_regression = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_bench_regression)


def write_bench(directory: Path, name: str, wall_time_s: float, scale: str | None):
    record = {"name": name, "wall_time_s": wall_time_s}
    if scale is not None:
        record["scale"] = {"name": scale}
    directory.mkdir(parents=True, exist_ok=True)
    (directory / f"BENCH_{name}.json").write_text(json.dumps(record))


@pytest.fixture()
def dirs(tmp_path):
    return tmp_path / "baselines", tmp_path / "results"


class TestRegressionGate:
    def run(self, dirs, tolerance=0.3):
        baselines, results = dirs
        return check_bench_regression.main(
            [
                "--results",
                str(results),
                "--baselines",
                str(baselines),
                "--tolerance",
                str(tolerance),
            ]
        )

    def test_within_tolerance_passes(self, dirs):
        write_bench(dirs[0], "x", 1.0, "tiny")
        write_bench(dirs[1], "x", 1.2, "tiny")
        assert self.run(dirs) == 0

    def test_slower_than_tolerance_fails(self, dirs):
        write_bench(dirs[0], "x", 1.0, "tiny")
        write_bench(dirs[1], "x", 1.5, "tiny")
        assert self.run(dirs) == 1

    def test_missing_fresh_result_fails(self, dirs):
        write_bench(dirs[0], "x", 1.0, "tiny")
        dirs[1].mkdir()
        assert self.run(dirs) == 1

    def test_scale_mismatch_skips_the_timing_comparison(self, dirs, capsys):
        # A full-scale committed baseline (documenting the paper-scale
        # contract) must not be timed against the tiny CI smoke run —
        # only the freshness requirement applies.
        write_bench(dirs[0], "negotiation", 3.3, "full")
        write_bench(dirs[1], "negotiation", 60.0, "tiny")
        assert self.run(dirs) == 0
        assert "scale mismatch" in capsys.readouterr().out

    def test_matching_scales_are_still_gated(self, dirs):
        write_bench(dirs[0], "negotiation", 3.3, "full")
        write_bench(dirs[1], "negotiation", 60.0, "full")
        assert self.run(dirs) == 1

    def test_records_without_scale_compare_as_before(self, dirs):
        write_bench(dirs[0], "x", 1.0, None)
        write_bench(dirs[1], "x", 10.0, None)
        assert self.run(dirs) == 1


class TestUpdateWorkflow:
    def run_update(self, dirs):
        baselines, results = dirs
        return check_bench_regression.main(
            ["--results", str(results), "--baselines", str(baselines), "--update"]
        )

    def test_adopts_new_and_same_scale_results(self, dirs):
        write_bench(dirs[0], "x", 1.0, "tiny")
        write_bench(dirs[1], "x", 0.8, "tiny")
        write_bench(dirs[1], "y", 2.0, "full")
        assert self.run_update(dirs) == 0
        assert json.loads((dirs[0] / "BENCH_x.json").read_text())["wall_time_s"] == 0.8
        assert (dirs[0] / "BENCH_y.json").exists()

    def test_refuses_to_replace_a_baseline_across_scales(self, dirs, capsys):
        # The full-scale negotiation baseline documents the paper-scale
        # contract; a tiny regen following the README refresh workflow
        # must not silently clobber it.
        write_bench(dirs[0], "negotiation", 3.3, "full")
        write_bench(dirs[1], "negotiation", 0.05, "tiny")
        assert self.run_update(dirs) == 0
        kept = json.loads((dirs[0] / "BENCH_negotiation.json").read_text())
        assert kept["scale"]["name"] == "full"
        assert kept["wall_time_s"] == 3.3
        assert "baseline kept" in capsys.readouterr().out
