"""Unit tests for the Nash bargaining primitives."""

import pytest

from repro.optimization.nash import (
    BargainingOutcome,
    is_pareto_improvement,
    nash_bargaining_solution,
    nash_bargaining_transfer,
    nash_product,
)


class TestNashProduct:
    def test_product(self):
        assert nash_product(2.0, 3.0) == 6.0

    def test_zero_utility_gives_zero_product(self):
        assert nash_product(0.0, 5.0) == 0.0


class TestNashBargainingTransfer:
    def test_equal_split_of_surplus(self):
        # u_X = 10, u_Y = 2: X pays 4 so both end at 6.
        transfer = nash_bargaining_transfer(10.0, 2.0)
        assert transfer == pytest.approx(4.0)

    def test_negative_transfer_when_y_gains_more(self):
        assert nash_bargaining_transfer(2.0, 10.0) == pytest.approx(-4.0)

    def test_symmetric_utilities_need_no_transfer(self):
        assert nash_bargaining_transfer(5.0, 5.0) == pytest.approx(0.0)

    def test_compensation_of_losing_party(self):
        # u_X = 10, u_Y = -2: the Nash solution gives both (10 - 2)/2 = 4.
        transfer = nash_bargaining_transfer(10.0, -2.0)
        assert 10.0 - transfer == pytest.approx(4.0)
        assert -2.0 + transfer == pytest.approx(4.0)


class TestBargainingOutcome:
    def test_post_utilities_are_equal(self):
        outcome = nash_bargaining_solution(10.0, 2.0)
        assert outcome.post_utility_x == pytest.approx(outcome.post_utility_y)
        assert outcome.fairness_gap == pytest.approx(0.0)

    def test_nash_product_of_outcome(self):
        outcome = nash_bargaining_solution(10.0, 2.0)
        assert outcome.nash_product == pytest.approx(36.0)

    def test_individual_rationality_with_positive_surplus(self):
        assert nash_bargaining_solution(10.0, -2.0).is_individually_rational

    def test_not_rational_with_negative_surplus(self):
        assert not nash_bargaining_solution(1.0, -5.0).is_individually_rational

    def test_equal_split_maximizes_nash_product(self):
        """No other transfer achieves a higher product (Pareto-optimal + fair)."""
        utility_x, utility_y = 8.0, 2.0
        optimal = nash_bargaining_solution(utility_x, utility_y).nash_product
        for transfer in [-2.0, 0.0, 1.0, 2.0, 4.0, 5.0]:
            candidate = (utility_x - transfer) * (utility_y + transfer)
            assert candidate <= optimal + 1e-12

    def test_outcome_dataclass_fields(self):
        outcome = BargainingOutcome(utility_x=3.0, utility_y=1.0, transfer_x_to_y=1.0)
        assert outcome.post_utility_x == 2.0
        assert outcome.post_utility_y == 2.0


class TestParetoImprovement:
    def test_strict_improvement(self):
        assert is_pareto_improvement((2.0, 2.0), (1.0, 2.0))

    def test_equal_is_not_improvement(self):
        assert not is_pareto_improvement((1.0, 2.0), (1.0, 2.0))

    def test_tradeoff_is_not_improvement(self):
        assert not is_pareto_improvement((3.0, 1.0), (1.0, 2.0))
