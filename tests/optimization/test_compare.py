"""Unit tests for the §IV-C comparison of qualification methods."""

import pytest

from repro.agreements import AgreementScenario, SegmentTraffic
from repro.agreements.agreement import PathSegment
from repro.economics import FlowVector
from repro.optimization.compare import compare_methods
from repro.topology import AS_A, AS_B, AS_D, AS_E


class TestCompareMethods:
    def test_both_methods_conclude_on_figure1_scenario(
        self, figure1_scenario, figure1_businesses
    ):
        comparison = compare_methods(
            figure1_scenario, figure1_businesses, restarts=3, seed=1
        )
        assert comparison.cash_concluded
        assert comparison.flow_volume_concluded

    def test_cash_is_perfectly_fair(self, figure1_scenario, figure1_businesses):
        comparison = compare_methods(
            figure1_scenario, figure1_businesses, restarts=3, seed=1
        )
        assert comparison.cash_fairness_gap == pytest.approx(0.0)

    def test_summary_keys(self, figure1_scenario, figure1_businesses):
        comparison = compare_methods(
            figure1_scenario, figure1_businesses, restarts=2, seed=1
        )
        summary = comparison.summary()
        assert set(summary) == {
            "cash_concluded",
            "flow_volume_concluded",
            "cash_joint_utility",
            "flow_volume_joint_utility",
            "cash_fairness_gap",
            "flow_volume_fairness_gap",
            "flexibility_advantage_cash",
        }

    def test_cash_flexibility_advantage(self, figure1_agreement, figure1_businesses):
        """§IV-C: there are scenarios only cash compensation can conclude.

        Here D reroutes provider traffic over E (D saves money), but no new
        customer traffic can be attracted.  E only incurs cost, so any
        positive flow-volume target leaves E negative — the flow-volume
        program collapses to zero.  The joint surplus is still positive
        (D saves more than E loses when E forwards to its peer F), so the
        cash agreement concludes.
        """
        scenario = AgreementScenario(
            agreement=figure1_agreement,
            segments=[
                SegmentTraffic(
                    segment=PathSegment(beneficiary=AS_D, partner=AS_E, target=6),
                    rerouted={AS_A: 10.0},
                )
            ],
            baseline={AS_D: FlowVector({AS_A: 30.0}), AS_E: FlowVector({AS_B: 30.0})},
        )
        comparison = compare_methods(scenario, figure1_businesses, restarts=4, seed=2)
        assert comparison.cash_concluded
        assert not comparison.flow_volume_concluded
        assert comparison.flexibility_advantage_cash

    def test_joint_utilities_zero_when_not_concluded(
        self, figure1_agreement, figure1_businesses
    ):
        scenario = AgreementScenario(agreement=figure1_agreement)
        comparison = compare_methods(scenario, figure1_businesses, restarts=2)
        assert comparison.flow_volume_joint_utility == 0.0
