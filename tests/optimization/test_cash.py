"""Unit tests for cash-compensation optimization (§IV-B)."""

import pytest

from repro.optimization.cash import negotiate_cash_agreement, optimize_cash_compensation
from repro.topology import AS_D, AS_E


class TestOptimizeCashCompensation:
    def test_concluded_when_surplus_positive(self):
        result = optimize_cash_compensation(1, 2, utility_x=10.0, utility_y=-2.0)
        assert result.concluded
        assert result.joint_surplus == pytest.approx(8.0)

    def test_not_concluded_when_surplus_negative(self):
        result = optimize_cash_compensation(1, 2, utility_x=1.0, utility_y=-2.0)
        assert not result.concluded
        assert result.transfer_x_to_y == 0.0
        assert result.post_utility_x == 0.0
        assert result.post_utility_y == 0.0

    def test_concluded_at_zero_surplus(self):
        result = optimize_cash_compensation(1, 2, utility_x=3.0, utility_y=-3.0)
        assert result.concluded
        assert result.post_utility_x == pytest.approx(0.0)
        assert result.post_utility_y == pytest.approx(0.0)

    def test_transfer_follows_eq11(self):
        result = optimize_cash_compensation(1, 2, utility_x=10.0, utility_y=2.0)
        assert result.transfer_x_to_y == pytest.approx(10.0 - (10.0 + 2.0) / 2.0)

    def test_post_utilities_split_surplus_equally(self):
        result = optimize_cash_compensation(1, 2, utility_x=10.0, utility_y=-2.0)
        assert result.post_utility_x == pytest.approx(4.0)
        assert result.post_utility_y == pytest.approx(4.0)

    def test_nash_product(self):
        result = optimize_cash_compensation(1, 2, utility_x=10.0, utility_y=-2.0)
        assert result.nash_product == pytest.approx(16.0)

    def test_losing_party_receives_money(self):
        result = optimize_cash_compensation(1, 2, utility_x=-2.0, utility_y=10.0)
        assert result.concluded
        assert result.transfer_x_to_y < 0.0  # Y pays X

    def test_both_positive_and_equal_needs_no_transfer(self):
        result = optimize_cash_compensation(1, 2, utility_x=4.0, utility_y=4.0)
        assert result.transfer_x_to_y == pytest.approx(0.0)


class TestNegotiateCashAgreement:
    def test_figure1_scenario_is_rescued_by_compensation(
        self, figure1_scenario, figure1_businesses
    ):
        """In the fixture D gains and E loses, but the joint surplus is
        positive, so the cash agreement concludes and both end up equal."""
        result = negotiate_cash_agreement(figure1_scenario, figure1_businesses)
        assert result.party_x == AS_D
        assert result.party_y == AS_E
        assert result.utility_x > 0.0
        assert result.utility_y < 0.0
        assert result.concluded
        assert result.transfer_x_to_y > 0.0
        assert result.post_utility_x == pytest.approx(result.post_utility_y)
        assert result.post_utility_x >= 0.0

    def test_empty_scenario_concludes_trivially(self, figure1_agreement, figure1_businesses):
        from repro.agreements import AgreementScenario

        scenario = AgreementScenario(agreement=figure1_agreement)
        result = negotiate_cash_agreement(scenario, figure1_businesses)
        assert result.concluded
        assert result.transfer_x_to_y == pytest.approx(0.0)
