"""Unit tests for the flow-volume-target optimization (§IV-A, Eq. 9)."""

import pytest

from repro.agreements import (
    AgreementScenario,
    SegmentTraffic,
    joint_utilities,
)
from repro.agreements.agreement import PathSegment
from repro.economics import FlowVector
from repro.optimization.flow_volume import optimize_flow_volume_targets
from repro.topology import AS_A, AS_B, AS_D, AS_E


class TestFlowVolumeOptimization:
    def test_both_parties_end_up_nonnegative(self, figure1_scenario, figure1_businesses):
        result = optimize_flow_volume_targets(
            figure1_scenario, figure1_businesses, restarts=3, seed=1
        )
        assert result.utility_x >= -1e-6
        assert result.utility_y >= -1e-6

    def test_concluded_on_figure1_scenario(self, figure1_scenario, figure1_businesses):
        result = optimize_flow_volume_targets(
            figure1_scenario, figure1_businesses, restarts=3, seed=1
        )
        assert result.concluded
        assert result.nash_product > 0.0

    def test_targets_respect_demand_limits(self, figure1_scenario, figure1_businesses):
        result = optimize_flow_volume_targets(
            figure1_scenario, figure1_businesses, restarts=3, seed=1
        )
        for target, original in zip(result.targets, figure1_scenario.segments):
            max_attracted = sum(
                original.attracted_limit(c)
                for c in set(original.attracted) | set(original.attracted_limits)
            )
            assert target.attracted_volume <= max_attracted + 1e-6
            assert target.rerouted_volume <= original.rerouted_volume + 1e-6

    def test_allowance_covers_attracted_traffic(self, figure1_scenario, figure1_businesses):
        """Constraint (II): the total allowance accommodates the attracted traffic."""
        result = optimize_flow_volume_targets(
            figure1_scenario, figure1_businesses, restarts=3, seed=1
        )
        for target in result.targets:
            assert target.total_allowance >= target.attracted_volume - 1e-9

    def test_optimized_utilities_match_scenario_reevaluation(
        self, figure1_scenario, figure1_businesses
    ):
        result = optimize_flow_volume_targets(
            figure1_scenario, figure1_businesses, restarts=3, seed=1
        )
        utilities = joint_utilities(result.scenario, figure1_businesses)
        assert utilities[AS_D] == pytest.approx(result.utility_x, abs=1e-9)
        assert utilities[AS_E] == pytest.approx(result.utility_y, abs=1e-9)

    def test_beats_or_matches_raw_scenario_nash_product(
        self, figure1_scenario, figure1_businesses
    ):
        """The optimum cannot be worse than the (infeasible) raw scenario clipped
        to feasibility — in the fixture the raw scenario has a negative Nash
        product, so any feasible point is an improvement."""
        raw = joint_utilities(figure1_scenario, figure1_businesses)
        raw_product = raw[AS_D] * raw[AS_E]
        result = optimize_flow_volume_targets(
            figure1_scenario, figure1_businesses, restarts=3, seed=1
        )
        assert result.nash_product >= raw_product

    def test_empty_scenario_cannot_conclude(self, figure1_agreement, figure1_businesses):
        scenario = AgreementScenario(agreement=figure1_agreement)
        result = optimize_flow_volume_targets(scenario, figure1_businesses)
        assert not result.concluded
        assert result.targets == ()

    def test_unviable_agreement_collapses_to_zero(
        self, figure1_agreement, figure1_businesses
    ):
        """§IV-C: when one party only loses and nothing can compensate it
        within the agreement, the only feasible targets are (near) zero."""
        scenario = AgreementScenario(
            agreement=figure1_agreement,
            segments=[
                # D sends traffic over E towards B, but none of it is rerouted
                # from a provider and no new customer traffic is attracted:
                # E pays for forwarding and D gains nothing.
                SegmentTraffic(
                    segment=PathSegment(beneficiary=AS_D, partner=AS_E, target=AS_B),
                    rerouted={None: 20.0},
                )
            ],
            baseline={AS_D: FlowVector({AS_A: 30.0}), AS_E: FlowVector({AS_B: 30.0})},
        )
        result = optimize_flow_volume_targets(scenario, figure1_businesses, restarts=3)
        total_allowance = sum(t.total_allowance for t in result.targets)
        assert total_allowance == pytest.approx(0.0, abs=1e-3)
        assert not result.concluded
