"""``repro agents list``, ``--list-scenarios``, and ``--population`` paths."""

import json

import pytest

from repro.api import SCHEMA_VERSION, AgentsListResult, ScenarioListResult, SimulateResult
from repro.cli import main


def run_ok(capsys, argv):
    assert main(argv) == 0
    return capsys.readouterr().out


class TestAgentsList:
    def test_text_lists_every_builtin_profile(self, capsys):
        out = run_ok(capsys, ["agents", "list"])
        for profile in ("honest", "dishonest", "adaptive", "budget", "regional"):
            assert profile in out
        assert "num_choices" in out  # parameter schemas are printed

    def test_json_round_trips(self, capsys):
        out = run_ok(capsys, ["agents", "list", "--format", "json"])
        data = json.loads(out)
        assert data["schema_version"] == SCHEMA_VERSION
        result = AgentsListResult.from_json_dict(data)
        assert {entry["profile"] for entry in result.profiles} >= {"honest", "budget"}

    def test_unknown_action_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit):
            main(["agents", "frolic"])


class TestListScenarios:
    def test_text_lists_every_scenario_with_fields(self, capsys):
        out = run_ok(capsys, ["simulate", "--list-scenarios"])
        assert "marketplace-heterogeneous" in out
        assert "failure-churn" in out
        assert "population: str" in out

    def test_json_round_trips(self, capsys):
        out = run_ok(capsys, ["simulate", "--list-scenarios", "--format", "json"])
        result = ScenarioListResult.from_json_dict(json.loads(out))
        names = {entry["name"] for entry in result.scenarios}
        assert "marketplace-heterogeneous" in names


class TestPopulationFlag:
    def pop_file(self, tmp_path):
        path = tmp_path / "pop.json"
        path.write_text(
            json.dumps(
                {
                    "name": "cli-pop",
                    "groups": [
                        {"profile": "dishonest", "match": {"role": "stub"}}
                    ],
                }
            ),
            encoding="utf-8",
        )
        return str(path)

    def test_population_reaches_the_scenario(self, tmp_path, capsys):
        out = run_ok(
            capsys,
            [
                "simulate",
                "--scenario",
                "marketplace-heterogeneous",
                "--duration",
                "96",
                "--population",
                self.pop_file(tmp_path),
            ],
        )
        assert "profile dishonest" in out

    def test_population_result_rides_the_json_envelope(self, tmp_path, capsys):
        out = run_ok(
            capsys,
            [
                "simulate",
                "--scenario",
                "marketplace-heterogeneous",
                "--duration",
                "96",
                "--population",
                self.pop_file(tmp_path),
                "--format",
                "json",
            ],
        )
        result = SimulateResult.from_json_dict(json.loads(out))
        assert result.population is not None
        profiles = {entry["profile"] for entry in result.population.profiles}
        assert "dishonest" in profiles

    def test_population_on_wrong_scenario_is_a_validation_error(
        self, tmp_path, capsys
    ):
        code = main(
            [
                "simulate",
                "--scenario",
                "marketplace",
                "--population",
                self.pop_file(tmp_path),
            ]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "--population is not supported" in err
        assert "marketplace-heterogeneous" in err

    def test_missing_population_file_is_a_validation_error(self, tmp_path, capsys):
        code = main(
            [
                "simulate",
                "--scenario",
                "marketplace-heterogeneous",
                "--population",
                str(tmp_path / "absent.json"),
            ]
        )
        assert code == 2
        assert "cannot read population spec" in capsys.readouterr().err
