"""The ``python -m repro.api.validate`` envelope checker."""

import json

from repro.api.validate import main, validate_envelope
from repro.envelope import SCHEMA_VERSION


def good_envelope() -> dict:
    return {
        "schema_version": SCHEMA_VERSION,
        "kind": "simulate_result",
        "name": "failure-churn",
        "seed": 1,
        "duration": 6.0,
        "events_processed": 10,
        "num_trace_records": 4,
        "kinds": {"availability_sample": 4},
        "headline": ["ok"],
        "trace_out": None,
    }


class TestValidateEnvelope:
    def test_valid_envelope_has_no_problems(self):
        assert validate_envelope(good_envelope()) == []

    def test_non_object_is_rejected(self):
        assert validate_envelope([1, 2]) != []

    def test_missing_schema_version_is_rejected(self):
        data = good_envelope()
        del data["schema_version"]
        assert any("schema_version" in p for p in validate_envelope(data))

    def test_wrong_schema_version_is_rejected(self):
        data = good_envelope()
        data["schema_version"] = 99
        assert any("unsupported schema_version" in p for p in validate_envelope(data))

    def test_unknown_kind_is_rejected(self):
        data = good_envelope()
        data["kind"] = "mystery"
        assert any("unknown kind" in p for p in validate_envelope(data))

    def test_missing_required_key_is_rejected(self):
        data = good_envelope()
        del data["events_processed"]
        assert any("missing required key" in p for p in validate_envelope(data))

    def test_non_finite_numbers_are_rejected_with_their_path(self):
        data = good_envelope()
        data["kinds"] = {"availability_sample": float("nan")}
        problems = validate_envelope(data)
        assert any("$.kinds.availability_sample" in p for p in problems)

    def test_nested_sections_are_checked(self):
        data = {
            "schema_version": SCHEMA_VERSION,
            "kind": "experiments_result",
            "sections": [{"schema_version": 99, "kind": "section_result"}],
        }
        problems = validate_envelope(data)
        assert any(p.startswith("sections[0]:") for p in problems)


class TestValidateCli:
    def test_valid_file_exits_zero(self, tmp_path, capsys):
        target = tmp_path / "env.json"
        target.write_text(json.dumps(good_envelope()))
        assert main([str(target)]) == 0
        out = capsys.readouterr().out
        assert "ok" in out and "simulate_result" in out

    def test_invalid_file_exits_one(self, tmp_path, capsys):
        target = tmp_path / "env.json"
        broken = good_envelope()
        del broken["kind"]
        target.write_text(json.dumps(broken))
        assert main([str(target)]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_unreadable_and_non_json_files_fail(self, tmp_path, capsys):
        missing = tmp_path / "missing.json"
        garbage = tmp_path / "garbage.json"
        garbage.write_text("{nope")
        assert main([str(missing), str(garbage)]) == 1
        out = capsys.readouterr().out
        assert out.count("FAIL") == 2

    def test_real_cli_json_output_validates(self, tmp_path, capsys, monkeypatch):
        """The envelope the CLI emits is exactly what the checker accepts."""
        from repro.cli import main as cli_main

        monkeypatch.chdir(tmp_path)
        assert (
            cli_main(
                [
                    "simulate",
                    "--scenario",
                    "flash-crowd",
                    "--seed",
                    "4",
                    "--duration",
                    "30",
                    "--format",
                    "json",
                ]
            )
            == 0
        )
        payload = capsys.readouterr().out
        target = tmp_path / "simulate.json"
        target.write_text(payload)
        assert main([str(target)]) == 0


class TestJobKinds:
    """The async job layer's envelopes are first-class validated kinds."""

    def test_job_request_and_status_kinds_are_registered(self):
        from repro.api.validate import REQUIRED_KEYS

        assert REQUIRED_KEYS["job_request"] == ("workflow", "request")
        assert REQUIRED_KEYS["job_status_result"] == (
            "job_id",
            "workflow",
            "state",
            "progress",
        )

    def test_live_job_envelopes_validate(self):
        from repro.api import JobRequest

        job = JobRequest(workflow="negotiate", request={"trials": 5})
        assert validate_envelope(job.to_json_dict()) == []

    def test_job_status_missing_state_is_rejected(self):
        document = {
            "schema_version": SCHEMA_VERSION,
            "kind": "job_status_result",
            "job_id": "j",
            "workflow": "negotiate",
            "progress": {},
        }
        problems = validate_envelope(document)
        assert any("state" in p for p in problems)
