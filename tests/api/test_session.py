"""Session semantics: warm reuse of expensive state across calls."""

import pytest

from repro.api import (
    DiversityRequest,
    OutputError,
    Session,
    SimulateRequest,
    SweepRequest,
    TopologyRequest,
)
from repro.api.results import (
    render_diversity_text,
    render_experiments_text,
    render_simulate_text,
)

TINY = dict(tier1=3, tier2=6, tier3=15, stubs=40)


class TestTopologyWorkflow:
    def test_generates_and_caches_by_parameters(self):
        session = Session()
        request = TopologyRequest(seed=3, **TINY)
        first = session.topology(request)
        assert first.num_ases == 3 + 6 + 15 + 40
        # The same parameters must be served from the session cache.
        assert session._generated[request.cache_key()] is not None
        cached = session._generated[request.cache_key()]
        session.topology(request)
        assert session._generated[request.cache_key()] is cached

    def test_writes_a_loadable_as_rel_file(self, tmp_path):
        from repro.topology import load_as_rel

        target = tmp_path / "topo.as-rel.txt"
        result = Session().topology(TopologyRequest(seed=3, output=str(target), **TINY))
        assert result.output == str(target)
        assert len(load_as_rel(target)) == result.num_ases

    def test_unwritable_output_raises_output_error(self, tmp_path):
        with pytest.raises(OutputError, match="cannot write topology"):
            Session().topology(
                TopologyRequest(seed=3, output=str(tmp_path / "no" / "t.txt"), **TINY)
            )


class TestDiversityWorkflow:
    def test_warm_call_reuses_topology_and_artifacts(self):
        session = Session()
        request = DiversityRequest(sample_size=10, seed=1, **TINY)
        first = session.diversity(request)
        graph_cache = dict(session._generated)
        artifact_cache = dict(session._artifacts)
        second = session.diversity(request)
        assert second == first
        # Neither the topology nor the agreements/index were rebuilt.
        assert session._generated == graph_cache
        for key, value in artifact_cache.items():
            assert session._artifacts[key] is value

    def test_matches_the_cold_one_shot_analysis(self):
        """The session must not change results, only amortize them."""
        from repro.agreements import enumerate_mutuality_agreements
        from repro.paths import analyze_path_diversity
        from repro.topology import generate_topology

        graph = generate_topology(
            num_tier1=3, num_tier2=6, num_tier3=15, num_stubs=40, seed=1
        ).graph
        agreements = list(enumerate_mutuality_agreements(graph))
        cold = analyze_path_diversity(
            graph, agreements=agreements, sample_size=10, seed=1
        )
        warm = Session().diversity(DiversityRequest(sample_size=10, seed=1, **TINY))
        assert warm.num_agreements == len(agreements)
        for row in warm.rows:
            assert row.mean_paths == cold.path_cdf(row.scenario).mean
            assert row.mean_destinations == cold.destination_cdf(row.scenario).mean

    def test_loaded_topology_is_cached_but_not_stale(self, tmp_path):
        session = Session()
        target = tmp_path / "topo.as-rel.txt"
        session.topology(TopologyRequest(seed=3, output=str(target), **TINY))
        request = DiversityRequest(topology=str(target), sample_size=5, seed=1)
        first = session.diversity(request)
        assert first.source == "loaded"
        assert session.diversity(request) == first

    def test_missing_topology_file_is_a_validation_error(self):
        from repro.api import ValidationError

        with pytest.raises(ValidationError, match="cannot read topology"):
            Session().diversity(DiversityRequest(topology="/does/not/exist"))

    def test_text_rendering_mentions_the_source(self):
        result = Session().diversity(DiversityRequest(sample_size=5, seed=1, **TINY))
        text = render_diversity_text(result)
        assert text.startswith("generated synthetic topology: ")
        assert "mutuality-based agreements:" in text
        assert "additional paths per AS:" in text


def tiny_runner_config(seed=13):
    """A combined-runner configuration small enough for the test suite."""
    from repro.experiments.fig2_pod import Fig2Config
    from repro.experiments.fig3_paths import PathDiversityConfig
    from repro.experiments.fig5_geodistance import Fig5Config
    from repro.experiments.fig6_bandwidth import Fig6Config
    from repro.experiments.runner import RunnerConfig

    class TinyRunnerConfig(RunnerConfig):
        def fig2(self):
            return Fig2Config(choice_counts=(10,), trials=4)

        def diversity(self):
            return PathDiversityConfig(
                num_tier1=3,
                num_tier2=8,
                num_tier3=25,
                num_stubs=70,
                sample_size=25,
                seed=1,
            )

        def fig5(self):
            return Fig5Config(diversity=self.diversity(), pair_sample_size=10)

        def fig6(self):
            return Fig6Config(diversity=self.diversity(), pair_sample_size=10)

    return TinyRunnerConfig(seed=seed)


class TestExperimentsWorkflow:
    @pytest.fixture(scope="class")
    def tiny_sections(self):
        from repro.experiments.runner import run_sections

        return run_sections(tiny_runner_config())

    def test_session_reuses_the_experiment_context(self):
        session = Session()
        config = tiny_runner_config()
        first = session.context_for(config.diversity())
        assert session.context_for(config.diversity()) is first

    def test_context_shares_the_session_negotiation_engine(self):
        """The 'one shared NegotiationEngine' seam holds for experiments."""
        session = Session()
        config = tiny_runner_config()
        context = session.context_for(config.diversity())
        assert context.negotiation is session.negotiation
        # A second session must not inherit the first one's engine.
        other = Session()
        assert other.context_for(config.diversity()).negotiation is other.negotiation

    def test_structured_sections_render_to_the_classic_report(self, tiny_sections):
        from repro.experiments.reporting import render_report
        from repro.experiments.runner import run_all

        assert render_report(tiny_sections) == run_all(tiny_runner_config())

    def test_sections_expose_keys_and_metrics(self, tiny_sections):
        keys = [section.key for section in tiny_sections]
        assert keys == ["stability", "fig2", "fig3", "fig4", "fig5", "fig6"]
        fig3 = tiny_sections[2]
        assert fig3.metrics["num_agreements"] > 0
        assert fig3.table is not None
        assert fig3.series  # raw CDF floats travel with the section

    def test_experiments_result_section_lookup(self, tiny_sections):
        from repro.api import ExperimentsResult

        result = ExperimentsResult(
            full=False, seed=13, trials=None, jobs=1, sections=tiny_sections
        )
        assert result.section("fig5").title.startswith("Fig. 5")
        with pytest.raises(KeyError):
            result.section("fig7")
        assert render_experiments_text(result).startswith("\n\n== §II")


class TestSimulateWorkflow:
    def test_summary_matches_the_engine_result(self):
        from repro.simulation import run_scenario

        request = SimulateRequest(scenario="flash-crowd", seed=4, duration=30.0)
        result = Session().simulate(request)
        engine_result = run_scenario("flash-crowd", seed=4, duration=30.0)
        assert render_simulate_text(result) == engine_result.summary()
        assert result.scenario_result is not None
        assert result.scenario_result.trace_text() == engine_result.trace_text()

    def test_trace_out_is_written(self, tmp_path):
        target = tmp_path / "trace.jsonl"
        result = Session().simulate(
            SimulateRequest(
                scenario="flash-crowd", seed=4, duration=30.0, trace_out=str(target)
            )
        )
        assert target.read_text(encoding="utf-8") == result.scenario_result.trace_text()

    def test_unwritable_trace_raises_output_error(self, tmp_path):
        with pytest.raises(OutputError, match="cannot write trace"):
            Session().simulate(
                SimulateRequest(
                    scenario="flash-crowd",
                    duration=1.0,
                    trace_out=str(tmp_path / "no" / "t.jsonl"),
                )
            )


class TestSweepWorkflow:
    def test_list_shards_expands_without_running(self):
        result = Session().sweep(SweepRequest(smoke=True, list_shards=True))
        assert result.name == "smoke"
        assert len(result.shard_ids) == 18
        assert "scenario/churn-base/tiny/seed1" in result.shard_ids

    def test_bad_spec_file_is_a_validation_error(self, tmp_path):
        from repro.api import ValidationError

        bad = tmp_path / "bad.json"
        bad.write_text('{"name": "x"}')
        with pytest.raises(ValidationError):
            Session().sweep(SweepRequest(spec=str(bad)))


class TestNegotiateWorkflow:
    def test_negotiate_reports_converged_pod_statistics(self):
        from repro.api import NegotiateRequest

        result = Session().negotiate(NegotiateRequest(num_choices=10, trials=5, seed=3))
        assert result.converged_trials + result.skipped_trials == 5
        assert result.min_pod <= result.mean_pod <= result.max_pod
        assert 0.0 < result.best_expected_nash_product <= result.truthful_nash_product

    def test_truthful_value_is_memoized_per_distribution(self):
        from repro.api import NegotiateRequest

        session = Session()
        session.negotiate(NegotiateRequest(num_choices=10, trials=3, seed=1))
        session.negotiate(NegotiateRequest(num_choices=12, trials=3, seed=2))
        stats = session.cache_stats()["truthful_nash_products"]
        assert stats["size"] == 1 and stats["hits"] == 1

    def test_negotiate_many_is_bit_identical_to_solo_calls(self):
        """The coalescing contract: batching must be invisible."""
        from repro.api import NegotiateRequest

        requests = [
            NegotiateRequest(num_choices=10, trials=4, seed=seed)
            for seed in (3, 11, 29)
        ]
        batched = Session().negotiate_many(requests)
        solo = [Session().negotiate(request) for request in requests]
        assert batched == solo  # dataclass equality over every float bit

    def test_negotiate_many_rejects_mixed_coalesce_keys(self):
        from repro.api import NegotiateRequest, ValidationError

        with pytest.raises(ValidationError, match="one coalesce group"):
            Session().negotiate_many(
                [
                    NegotiateRequest(num_choices=10, trials=2, seed=1),
                    NegotiateRequest(num_choices=20, trials=2, seed=1),
                ]
            )

    def test_negotiate_many_of_nothing_is_nothing(self):
        assert Session().negotiate_many([]) == []


class TestSessionLifecycle:
    def test_context_manager_closes_and_workflows_raise(self):
        from repro.api import NegotiateRequest, ServiceError

        with Session() as session:
            session.negotiate(NegotiateRequest(num_choices=10, trials=2, seed=1))
            assert not session.closed
        assert session.closed
        with pytest.raises(ServiceError, match="session is closed"):
            session.negotiate(NegotiateRequest(num_choices=10, trials=2, seed=1))

    def test_close_is_idempotent_and_drops_caches(self):
        session = Session()
        session.topology(TopologyRequest(seed=3, **TINY))
        assert session.cache_stats()["generated_topologies"]["size"] == 1
        session.close()
        session.close()
        assert session.cache_stats()["generated_topologies"]["size"] == 0

    def test_cache_limit_bounds_warm_state(self):
        session = Session(cache_limit=2)
        for seed in range(4):
            session.topology(TopologyRequest(seed=seed, **TINY))
        stats = session.cache_stats()["generated_topologies"]
        assert stats["size"] == 2
        assert stats["evictions"] == 2

    def test_cache_stats_covers_every_cache(self):
        stats = Session().cache_stats()
        assert sorted(stats) == [
            "diversity_artifacts",
            "experiment_contexts",
            "generated_topologies",
            "loaded_topologies",
            "truthful_nash_products",
        ]
        for counters in stats.values():
            assert counters == {
                "size": 0,
                "max_entries": None,
                "hits": 0,
                "misses": 0,
                "evictions": 0,
            }
