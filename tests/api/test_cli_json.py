"""``--format json`` on every subcommand: envelopes on stdout, round-trips."""

import json

import pytest

from repro.api import (
    SCHEMA_VERSION,
    DiversityResult,
    SimulateResult,
    SweepListResult,
    SweepResult,
    TopologyResult,
)
from repro.cli import main

TINY_TOPOLOGY = [
    "--tier1",
    "3",
    "--tier2",
    "6",
    "--tier3",
    "15",
    "--stubs",
    "40",
    "--seed",
    "3",
]


def run_json(capsys, argv):
    assert main(argv) == 0
    return json.loads(capsys.readouterr().out)


class TestJsonFormat:
    def test_topology_json_round_trips(self, tmp_path, capsys):
        target = tmp_path / "topo.as-rel.txt"
        data = run_json(
            capsys, ["topology", str(target), *TINY_TOPOLOGY, "--format", "json"]
        )
        assert data["schema_version"] == SCHEMA_VERSION
        result = TopologyResult.from_json_dict(data)
        assert result.num_ases == 64
        assert target.is_file()

    def test_diversity_json_round_trips(self, tmp_path, capsys):
        target = tmp_path / "topo.as-rel.txt"
        main(["topology", str(target), *TINY_TOPOLOGY])
        capsys.readouterr()
        data = run_json(
            capsys,
            [
                "diversity",
                "--topology",
                str(target),
                "--sample-size",
                "10",
                "--seed",
                "1",
                "--format",
                "json",
            ],
        )
        result = DiversityResult.from_json_dict(data)
        assert result.source == "loaded"
        assert result.num_agreements > 0
        assert [row.scenario for row in result.rows] == [
            "GRC",
            "MA* (Top 1)",
            "MA* (Top 5)",
            "MA*",
            "MA",
        ]

    def test_simulate_json_round_trips(self, capsys):
        data = run_json(
            capsys,
            [
                "simulate",
                "--scenario",
                "flash-crowd",
                "--seed",
                "4",
                "--duration",
                "30",
                "--format",
                "json",
            ],
        )
        result = SimulateResult.from_json_dict(data)
        assert result.name == "flash-crowd"
        assert result.seed == 4
        assert result.num_trace_records == sum(result.kinds.values())

    def test_simulate_json_with_trace_out_still_writes_the_trace(
        self, tmp_path, capsys
    ):
        target = tmp_path / "trace.jsonl"
        data = run_json(
            capsys,
            [
                "simulate",
                "--scenario",
                "flash-crowd",
                "--seed",
                "4",
                "--duration",
                "30",
                "--trace-out",
                str(target),
                "--format",
                "json",
            ],
        )
        assert data["trace_out"] == str(target)
        assert target.read_text(encoding="utf-8").startswith('{"')

    def test_sweep_list_json_round_trips(self, capsys):
        data = run_json(capsys, ["sweep", "--smoke", "--list", "--format", "json"])
        result = SweepListResult.from_json_dict(data)
        assert result.name == "smoke"
        assert len(result.shard_ids) == 18

    def test_sweep_run_json_round_trips(self, tmp_path, capsys):
        spec = tmp_path / "spec.json"
        spec.write_text(
            json.dumps(
                {
                    "name": "json-tiny",
                    "scales": [
                        {
                            "name": "t",
                            "num_tier1": 2,
                            "num_tier2": 5,
                            "num_tier3": 12,
                            "num_stubs": 30,
                            "sample_size": 20,
                            "pair_sample_size": 8,
                        }
                    ],
                    "seeds": [1],
                    "figures": ["fig3"],
                }
            )
        )
        data = run_json(
            capsys,
            [
                "sweep",
                "--spec",
                str(spec),
                "--cache-dir",
                str(tmp_path / "cache"),
                "--out",
                str(tmp_path / "out"),
                "--format",
                "json",
            ],
        )
        result = SweepResult.from_json_dict(data)
        assert result.name == "json-tiny"
        assert len(result.executed) == 1
        assert result.summary["name"] == "json-tiny"

    def test_json_errors_keep_the_text_contract(self, capsys):
        """Validation failures behave identically regardless of format."""
        assert main(["experiments", "--jobs", "0", "--format", "json"]) == 2
        err = capsys.readouterr().err
        assert "repro experiments: error: --jobs must be a positive integer" in err

    @pytest.mark.parametrize(
        "argv",
        [
            ["experiments", "--format", "yaml"],
            ["simulate", "--format", "xml"],
        ],
    )
    def test_unknown_format_is_an_argparse_error(self, argv):
        with pytest.raises(SystemExit):
            main(argv)
