"""The error taxonomy's one status table: exit codes and HTTP statuses.

``dispatch`` (CLI exit codes) and the serve subsystem (HTTP statuses)
walk the same :data:`repro.errors.STATUS_TABLE`, so a new error class
gets both mappings in one place — these tests pin the pairs.
"""

import pytest

from repro.errors import (
    STATUS_TABLE,
    EnvelopeError,
    OutputError,
    ReproError,
    ServiceError,
    ServiceUnavailableError,
    ValidationError,
    error_class_for,
    exit_code_for,
    http_status_for,
)


class TestStatusTable:
    @pytest.mark.parametrize(
        ("error", "exit_code", "http_status"),
        [
            (ValidationError("bad"), 2, 400),
            (EnvelopeError("bad envelope"), 2, 400),
            (OutputError("unwritable"), 1, 500),
            (ServiceError("broken"), 1, 500),
            (ServiceUnavailableError("draining"), 1, 503),
            (ReproError("generic"), 1, 500),
        ],
    )
    def test_both_mappings_agree_with_the_table(self, error, exit_code, http_status):
        assert exit_code_for(error) == exit_code
        assert http_status_for(error) == http_status
        # The instance properties are the same lookups.
        assert error.exit_code == exit_code
        assert error.http_status == http_status

    def test_non_repro_errors_fall_back_to_failure(self):
        assert exit_code_for(RuntimeError("boom")) == 1
        assert http_status_for(RuntimeError("boom")) == 500

    def test_every_row_names_a_repro_error(self):
        for error_cls, exit_code, http_status in STATUS_TABLE:
            assert issubclass(error_cls, ReproError)
            assert exit_code in (1, 2)
            assert 400 <= http_status < 600

    def test_subclass_rows_precede_their_bases(self):
        """First-isinstance-match only works if specific rows come first."""
        seen: list[type] = []
        for error_cls, _, _ in STATUS_TABLE:
            assert not any(issubclass(error_cls, earlier) for earlier in seen), (
                f"{error_cls.__name__} is unreachable behind a base class row"
            )
            seen.append(error_cls)


class TestErrorClassFor:
    """The client-side inverse: served status pairs → raised classes."""

    @pytest.mark.parametrize(
        ("exit_code", "http_status", "expected"),
        [
            (2, 400, ValidationError),
            (1, 500, ServiceError),
            (1, 503, ServiceUnavailableError),
            (7, 418, ReproError),  # unknown pair falls back to the root
        ],
    )
    def test_pairs_map_to_canonical_classes(self, exit_code, http_status, expected):
        assert error_class_for(exit_code, http_status) is expected

    def test_round_trips_through_the_status_table(self):
        """Raising the mapped class reproduces the served status pair."""
        for _, exit_code, http_status in STATUS_TABLE:
            error = error_class_for(exit_code, http_status)("x")
            assert (error.exit_code, error.http_status) == (exit_code, http_status)


class TestTaxonomyShape:
    def test_service_errors_are_runtime_errors(self):
        assert isinstance(ServiceError("x"), RuntimeError)
        assert isinstance(ServiceUnavailableError("x"), ServiceError)

    def test_validation_branch_is_value_error(self):
        assert isinstance(ValidationError("x"), ValueError)
        assert isinstance(EnvelopeError("x"), ValidationError)
