"""The error taxonomy's one status table: exit codes and HTTP statuses.

``dispatch`` (CLI exit codes) and the serve subsystem (HTTP statuses)
walk the same :data:`repro.errors.STATUS_TABLE`, so a new error class
gets both mappings in one place — these tests pin the pairs.
"""

import pytest

from repro.errors import (
    STATUS_TABLE,
    EnvelopeError,
    OutputError,
    ReproError,
    ServiceError,
    ServiceUnavailableError,
    ValidationError,
    exit_code_for,
    http_status_for,
)


class TestStatusTable:
    @pytest.mark.parametrize(
        ("error", "exit_code", "http_status"),
        [
            (ValidationError("bad"), 2, 400),
            (EnvelopeError("bad envelope"), 2, 400),
            (OutputError("unwritable"), 1, 500),
            (ServiceError("broken"), 1, 500),
            (ServiceUnavailableError("draining"), 1, 503),
            (ReproError("generic"), 1, 500),
        ],
    )
    def test_both_mappings_agree_with_the_table(self, error, exit_code, http_status):
        assert exit_code_for(error) == exit_code
        assert http_status_for(error) == http_status
        # The instance properties are the same lookups.
        assert error.exit_code == exit_code
        assert error.http_status == http_status

    def test_non_repro_errors_fall_back_to_failure(self):
        assert exit_code_for(RuntimeError("boom")) == 1
        assert http_status_for(RuntimeError("boom")) == 500

    def test_every_row_names_a_repro_error(self):
        for error_cls, exit_code, http_status in STATUS_TABLE:
            assert issubclass(error_cls, ReproError)
            assert exit_code in (1, 2)
            assert 400 <= http_status < 600

    def test_subclass_rows_precede_their_bases(self):
        """First-isinstance-match only works if specific rows come first."""
        seen: list[type] = []
        for error_cls, _, _ in STATUS_TABLE:
            assert not any(issubclass(error_cls, earlier) for earlier in seen), (
                f"{error_cls.__name__} is unreachable behind a base class row"
            )
            seen.append(error_cls)


class TestTaxonomyShape:
    def test_service_errors_are_runtime_errors(self):
        assert isinstance(ServiceError("x"), RuntimeError)
        assert isinstance(ServiceUnavailableError("x"), ServiceError)

    def test_validation_branch_is_value_error(self):
        assert isinstance(ValidationError("x"), ValueError)
        assert isinstance(EnvelopeError("x"), ValidationError)
