"""JSON envelope round-trips: to_json_dict → from_json_dict → equal.

Every round trip also passes the value through ``json.dumps``/
``json.loads`` so only strict-JSON-serializable payloads pass, exactly
what a consumer on the other side of a pipe would see.
"""

import json

import pytest

from repro.api import (
    SCHEMA_VERSION,
    DiversityRequest,
    DiversityResult,
    DiversityScenarioRow,
    EnvelopeError,
    ExperimentsRequest,
    ExperimentsResult,
    PaperComparison,
    SectionResult,
    SectionSeries,
    SectionTable,
    Session,
    SimulateRequest,
    SimulateResult,
    SweepListResult,
    SweepRequest,
    SweepResult,
    TopologyRequest,
    TopologyResult,
)
from repro.simulation import ScenarioResult, run_scenario


def roundtrip(value):
    """to_json_dict → JSON text → from_json_dict."""
    data = json.loads(json.dumps(value.to_json_dict()))
    return type(value).from_json_dict(data)


def make_section() -> SectionResult:
    return SectionResult(
        key="fig9",
        title="Fig. 9 — imaginary",
        comparisons=(
            PaperComparison(
                metric="m", paper_value="1", measured_value="2", note="n"
            ),
        ),
        preamble=("a line",),
        table=SectionTable(headers=("a", "b"), rows=(("1", "2"), ("3", "4"))),
        series_caption="CDF:",
        series=(SectionSeries(name="s", xs=(1.0, 2.0), ys=(0.5, 1.0)),),
        metrics={"x": 1.5, "n": 3, "flag": True, "missing": None},
    )


class TestEnvelopeHeader:
    def test_envelopes_carry_schema_version_and_kind(self):
        data = make_section().to_json_dict()
        assert data["schema_version"] == SCHEMA_VERSION
        assert data["kind"] == "section_result"

    def test_wrong_kind_is_rejected(self):
        data = make_section().to_json_dict()
        with pytest.raises(EnvelopeError, match="expected envelope kind"):
            ExperimentsResult.from_json_dict(data)

    def test_wrong_schema_version_is_rejected(self):
        data = make_section().to_json_dict()
        data["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(EnvelopeError, match="unsupported schema_version"):
            SectionResult.from_json_dict(data)

    def test_missing_required_key_is_rejected(self):
        data = make_section().to_json_dict()
        del data["key"]
        with pytest.raises(EnvelopeError, match="missing required key"):
            SectionResult.from_json_dict(data)

    def test_every_unconditionally_read_key_is_required(self):
        """A short envelope fails with EnvelopeError, never a KeyError."""
        data = {
            "schema_version": SCHEMA_VERSION,
            "kind": "topology_result",
            "num_ases": 64,
            "num_transit_links": 99,
            "num_peering_links": 193,
            "graph_description": "ASGraph(...)",
        }
        with pytest.raises(EnvelopeError, match="missing required key"):
            TopologyResult.from_json_dict(data)
        data = {
            "schema_version": SCHEMA_VERSION,
            "kind": "diversity_result",
            "source": "generated",
            "graph_description": "ASGraph(...)",
            "num_agreements": 1,
            "rows": [],
        }
        with pytest.raises(EnvelopeError, match="missing required key"):
            DiversityResult.from_json_dict(data)


class TestRequestRoundTrips:
    @pytest.mark.parametrize(
        "request_value",
        [
            TopologyRequest(tier1=3, tier2=6, tier3=15, stubs=40, seed=3, output="x"),
            DiversityRequest(sample_size=10, seed=1),
            DiversityRequest(topology="topo.txt", sample_size=5, seed=0),
            ExperimentsRequest(full=True, seed=7, trials=3, jobs=2),
            SimulateRequest(scenario="marketplace", seed=9, duration=48.0),
            SweepRequest(smoke=True, jobs=2, list_shards=True),
        ],
    )
    def test_request_round_trips(self, request_value):
        assert roundtrip(request_value) == request_value

    def test_round_trip_revalidates(self):
        data = ExperimentsRequest(jobs=2).to_json_dict()
        data["jobs"] = 0
        from repro.api import ValidationError

        with pytest.raises(ValidationError, match="--jobs"):
            ExperimentsRequest.from_json_dict(data)


class TestResultRoundTrips:
    def test_section_result(self):
        assert roundtrip(make_section()) == make_section()

    def test_topology_result(self):
        result = TopologyResult(
            tier1=3,
            tier2=6,
            tier3=15,
            stubs=40,
            seed=3,
            num_ases=64,
            num_transit_links=99,
            num_peering_links=193,
            graph_description="ASGraph(ases=64, ...)",
            output="topo.txt",
        )
        assert roundtrip(result) == result

    def test_diversity_result(self):
        result = DiversityResult(
            source="generated",
            topology_path=None,
            graph_description="ASGraph(...)",
            num_agreements=193,
            sample_size=10,
            seed=1,
            rows=(
                DiversityScenarioRow("GRC", 42.0, 37.0),
                DiversityScenarioRow("MA", 120.5, 50.25),
            ),
            additional_paths_mean=88.0,
            additional_paths_max=236.0,
        )
        assert roundtrip(result) == result

    def test_experiments_result(self):
        result = ExperimentsResult(
            full=False,
            seed=7,
            trials=3,
            jobs=2,
            sections=(make_section(),),
        )
        assert roundtrip(result) == result

    def test_simulate_result(self):
        result = SimulateResult(
            name="failure-churn",
            seed=1,
            duration=6.0,
            events_processed=120,
            num_trace_records=40,
            kinds={"availability_sample": 36, "link_event": 4},
            headline=("line one", "line two"),
            trace_out=None,
        )
        assert roundtrip(result) == result

    def test_sweep_results(self):
        run = SweepResult(
            name="smoke",
            executed=("a", "b"),
            reused=("c",),
            summary_path="out/sweep_summary.json",
            num_tables=4,
            summary={"name": "smoke", "shards": []},
        )
        assert roundtrip(run) == run
        listing = SweepListResult(name="smoke", shard_ids=("a", "b", "c"))
        assert roundtrip(listing) == listing


class TestEngineLevelEnvelopes:
    def test_scenario_result_round_trips_with_full_trace(self):
        result = run_scenario("flash-crowd", seed=4, duration=30.0)
        restored = ScenarioResult.from_json_dict(
            json.loads(json.dumps(result.to_json_dict()))
        )
        assert restored == result
        assert restored.trace_text() == result.trace_text()

    def test_scenario_result_stays_hashable(self):
        """Trace value-equality must not break the frozen container's hash."""
        result = run_scenario("flash-crowd", seed=4, duration=30.0)
        assert isinstance(hash(result), int)

    def test_sweep_run_result_round_trips(self, tmp_path):
        from repro.sweep import SweepRunResult, SweepSpec, run_sweep

        spec = SweepSpec.from_mapping(
            {
                "name": "rt",
                "scales": [
                    {
                        "name": "t",
                        "num_tier1": 2,
                        "num_tier2": 5,
                        "num_tier3": 12,
                        "num_stubs": 30,
                        "sample_size": 20,
                        "pair_sample_size": 8,
                    }
                ],
                "seeds": [1],
                "figures": ["fig3"],
            }
        )
        outcome = run_sweep(
            spec, cache_dir=tmp_path / "cache", out_dir=tmp_path / "out"
        )
        restored = SweepRunResult.from_json_dict(
            json.loads(json.dumps(outcome.to_json_dict()))
        )
        assert restored == outcome

    def test_live_session_results_round_trip(self):
        """End-to-end: real session results survive the envelope."""
        session = Session()
        simulate = session.simulate(
            SimulateRequest(scenario="flash-crowd", seed=4, duration=30.0)
        )
        assert roundtrip(simulate) == simulate
        diversity = session.diversity(
            DiversityRequest(
                sample_size=10, seed=1, tier1=3, tier2=6, tier3=15, stubs=40
            )
        )
        assert roundtrip(diversity) == diversity


class TestNegotiateEnvelopes:
    def test_request_round_trips(self):
        from repro.api import NegotiateRequest

        request = NegotiateRequest(
            distribution="u2", num_choices=12, trials=6, seed=11
        )
        assert roundtrip(request) == request

    def test_request_round_trip_revalidates(self):
        from repro.api import NegotiateRequest, ValidationError

        data = NegotiateRequest().to_json_dict()
        data["distribution"] = "u9"
        with pytest.raises(ValidationError, match="unknown distribution"):
            NegotiateRequest.from_json_dict(data)

    def test_result_round_trips_bit_exactly(self):
        from repro.api import NegotiateRequest

        result = Session().negotiate(
            NegotiateRequest(num_choices=10, trials=4, seed=3)
        )
        restored = roundtrip(result)
        assert restored == result  # float equality: JSON must not round

    def test_result_envelope_validates(self):
        from repro.api import NegotiateRequest
        from repro.api.validate import validate_envelope

        result = Session().negotiate(
            NegotiateRequest(num_choices=10, trials=4, seed=3)
        )
        assert validate_envelope(json.loads(json.dumps(result.to_json_dict()))) == []
