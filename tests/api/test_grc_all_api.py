"""API surface tests for the grc-all workflow.

Request validation mirrors the CLI wording, the result envelope round
trips, and a session-level run produces the same numbers sequentially
and sharded.
"""

import json

import pytest

from repro.api import GrcAllRequest, GrcAllResult, Session, ValidationError
from repro.api.results import render_grc_all_text
from repro.api.validate import validate_envelope

TINY = dict(tier1=2, tier2=3, tier3=5, stubs=12, seed=5)


class TestRequestValidation:
    @pytest.mark.parametrize("jobs", [0, -1])
    def test_non_positive_jobs_rejected(self, jobs):
        with pytest.raises(ValidationError, match="--jobs must be a positive integer"):
            GrcAllRequest(jobs=jobs)

    @pytest.mark.parametrize("shards", [0, -4])
    def test_non_positive_shards_rejected(self, shards):
        with pytest.raises(
            ValidationError, match="--shards must be a positive integer"
        ):
            GrcAllRequest(shards=shards)

    def test_negative_seed_rejected(self):
        with pytest.raises(ValidationError, match="--seed must be non-negative"):
            GrcAllRequest(seed=-1)

    def test_defaults_validate(self):
        request = GrcAllRequest()
        assert request.jobs == 1
        assert request.shards is None
        assert request.topology is None

    def test_request_envelope_round_trips(self):
        request = GrcAllRequest(jobs=2, shards=4, **TINY)
        assert GrcAllRequest.from_json_dict(request.to_json_dict()) == request


class TestResultEnvelope:
    def _result(self, **overrides):
        values = dict(
            source="generated",
            topology_path=None,
            fingerprint="ab" * 32,
            jobs=1,
            shards=1,
            num_ases=22,
            total_paths=120,
            mean_paths=5.45,
            max_paths=14,
            mean_destinations=4.2,
            max_destinations=11,
            output=None,
        )
        values.update(overrides)
        return GrcAllResult(**values)

    def test_result_envelope_round_trips(self):
        result = self._result(output="grc.csv", topology_path="topo.txt")
        payload = json.loads(json.dumps(result.to_json_dict()))
        assert GrcAllResult.from_json_dict(payload) == result

    def test_envelope_validates(self):
        assert validate_envelope(self._result().to_json_dict()) == []

    def test_text_rendering_mentions_the_essentials(self):
        text = render_grc_all_text(self._result(output="grc.csv"))
        assert "grc-all" in text
        assert "ab" * 32 in text
        assert "120" in text
        assert "grc.csv" in text


class TestSessionRuns:
    def test_sequential_and_sharded_agree(self, tmp_path):
        session = Session()
        sequential = session.grc_all(GrcAllRequest(**TINY))
        sharded = session.grc_all(
            GrcAllRequest(
                jobs=2, artifact_dir=str(tmp_path / "store"), **TINY
            )
        )
        assert sharded.fingerprint == sequential.fingerprint
        assert sharded.total_paths == sequential.total_paths
        assert sharded.max_paths == sequential.max_paths
        assert sharded.shards >= 2

    def test_csv_output_written(self, tmp_path):
        out = tmp_path / "grc.csv"
        result = Session().grc_all(GrcAllRequest(output=str(out), **TINY))
        lines = out.read_text(encoding="utf-8").splitlines()
        assert lines[0] == "asn,paths,destinations"
        assert len(lines) == result.num_ases + 1

    def test_topology_file_input(self, tmp_path):
        from repro.api import TopologyRequest

        session = Session()
        topo = tmp_path / "topo.txt"
        session.topology(TopologyRequest(output=str(topo), **TINY))
        from_file = session.grc_all(GrcAllRequest(topology=str(topo)))
        generated = session.grc_all(GrcAllRequest(**TINY))
        assert from_file.fingerprint == generated.fingerprint
        assert from_file.source == "loaded"
        assert from_file.topology_path == str(topo)

    def test_unreadable_topology_rejected(self, tmp_path):
        with pytest.raises(ValidationError):
            Session().grc_all(GrcAllRequest(topology=str(tmp_path / "missing.txt")))
