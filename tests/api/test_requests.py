"""Typed-request validation: API callers get the same errors as CLI users."""

import pytest

from repro.api import (
    DiversityRequest,
    ExperimentsRequest,
    SimulateRequest,
    SweepRequest,
    TopologyRequest,
    ValidationError,
)


class TestSeedValidation:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: TopologyRequest(seed=-1),
            lambda: DiversityRequest(seed=-1),
            lambda: ExperimentsRequest(seed=-1),
            lambda: SimulateRequest(seed=-1),
        ],
    )
    def test_negative_seed_is_rejected_everywhere(self, factory):
        with pytest.raises(ValidationError, match="--seed must be non-negative"):
            factory()

    def test_none_seed_is_accepted_where_optional(self):
        assert ExperimentsRequest(seed=None).seed is None
        assert SimulateRequest(seed=None).seed is None

    def test_zero_seed_is_accepted(self):
        assert ExperimentsRequest(seed=0).seed == 0


class TestExperimentsValidation:
    @pytest.mark.parametrize("jobs", [0, -1, -100])
    def test_non_positive_jobs_is_rejected(self, jobs):
        with pytest.raises(ValidationError, match="--jobs must be a positive integer"):
            ExperimentsRequest(jobs=jobs)

    @pytest.mark.parametrize("trials", [0, -5])
    def test_non_positive_trials_is_rejected(self, trials):
        with pytest.raises(
            ValidationError, match="--trials must be a positive integer"
        ):
            ExperimentsRequest(trials=trials)

    def test_trials_none_means_scale_default(self):
        assert ExperimentsRequest().trials is None

    def test_error_message_matches_the_cli_wording(self):
        with pytest.raises(ValidationError) as excinfo:
            ExperimentsRequest(jobs=0)
        assert str(excinfo.value) == "--jobs must be a positive integer, got 0"


class TestSimulateValidation:
    @pytest.mark.parametrize("duration", [-5.0, float("nan"), float("inf")])
    def test_bad_duration_is_rejected(self, duration):
        with pytest.raises(
            ValidationError, match="--duration must be a non-negative finite"
        ):
            SimulateRequest(duration=duration)

    def test_duration_is_checked_before_seed(self):
        """The CLI historically reported the duration problem first."""
        with pytest.raises(ValidationError, match="--duration"):
            SimulateRequest(duration=-1.0, seed=-1)

    def test_unknown_scenario_is_rejected(self):
        with pytest.raises(ValidationError, match="unknown scenario"):
            SimulateRequest(scenario="nope")

    def test_zero_duration_is_accepted(self):
        assert SimulateRequest(duration=0.0).duration == 0.0


class TestTopologyAndDiversityValidation:
    @pytest.mark.parametrize("field", ["tier1", "tier2", "tier3", "stubs"])
    def test_negative_tier_counts_are_rejected(self, field):
        with pytest.raises(ValidationError, match=f"--{field} must be non-negative"):
            TopologyRequest(**{field: -1})

    @pytest.mark.parametrize("sample_size", [0, -3])
    def test_non_positive_sample_size_is_rejected(self, sample_size):
        with pytest.raises(
            ValidationError, match="--sample-size must be a positive integer"
        ):
            DiversityRequest(sample_size=sample_size)


class TestSweepValidation:
    def test_non_positive_jobs_is_rejected(self):
        with pytest.raises(ValidationError, match="--jobs must be a positive integer"):
            SweepRequest(smoke=True, jobs=0)

    def test_spec_and_smoke_are_mutually_exclusive(self):
        with pytest.raises(ValidationError, match="exactly one of"):
            SweepRequest(spec="spec.json", smoke=True)

    def test_neither_spec_nor_smoke_is_rejected(self):
        with pytest.raises(ValidationError, match="exactly one of"):
            SweepRequest()

    def test_smoke_request_is_valid(self):
        assert SweepRequest(smoke=True).jobs == 1


class TestValidationErrorTaxonomy:
    def test_validation_error_maps_to_exit_code_2(self):
        from repro.api import ReproError, exit_code_for

        error = ValidationError("bad")
        assert isinstance(error, ReproError)
        assert isinstance(error, ValueError)
        assert error.exit_code == 2
        assert exit_code_for(error) == 2

    def test_unknown_errors_map_to_exit_code_1(self):
        from repro.api import exit_code_for

        assert exit_code_for(RuntimeError("boom")) == 1


class TestNegotiateValidation:
    def test_defaults_are_valid(self):
        from repro.api import NegotiateRequest

        request = NegotiateRequest()
        assert request.distribution == "u1"
        assert request.coalesce_key() == ("u1", 50)

    def test_unknown_distribution_rejected(self):
        from repro.api import NegotiateRequest, ValidationError

        with pytest.raises(ValidationError, match="unknown distribution"):
            NegotiateRequest(distribution="gaussian")

    @pytest.mark.parametrize("field", ["num_choices", "trials"])
    def test_non_positive_counts_rejected(self, field):
        from repro.api import NegotiateRequest, ValidationError

        with pytest.raises(ValidationError, match="must be a positive integer"):
            NegotiateRequest(**{field: 0})

    def test_negative_seed_rejected(self):
        from repro.api import NegotiateRequest, ValidationError

        with pytest.raises(ValidationError, match="--seed must be non-negative"):
            NegotiateRequest(seed=-1)

    def test_coalesce_key_ignores_trials_and_seed(self):
        from repro.api import NegotiateRequest

        a = NegotiateRequest(num_choices=30, trials=10, seed=1)
        b = NegotiateRequest(num_choices=30, trials=99, seed=2)
        assert a.coalesce_key() == b.coalesce_key()


class TestJobRequests:
    """The async job layer's request envelope and workflow registry."""

    def test_every_registered_workflow_builds_its_request_type(self):
        from repro.api import JOB_WORKFLOWS, build_workflow_request

        # Sweep insists on exactly one of spec/smoke; the rest accept
        # their defaults.
        minimal = {"sweep": {"smoke": True}}
        for workflow, request_type in JOB_WORKFLOWS.items():
            built = build_workflow_request(workflow, minimal.get(workflow, {}))
            assert isinstance(built, request_type)

    def test_unknown_workflow_names_the_available_ones(self):
        from repro.api import ValidationError, build_workflow_request

        with pytest.raises(ValidationError, match="negotiate"):
            build_workflow_request("bogus", {})

    def test_envelope_and_bare_payload_build_identically(self):
        from repro.api import NegotiateRequest, build_workflow_request

        payload = {"num_choices": 10, "trials": 5, "seed": 3}
        bare = build_workflow_request("negotiate", payload)
        enveloped = build_workflow_request(
            "negotiate", NegotiateRequest(**payload).to_json_dict()
        )
        assert bare == enveloped

    def test_bare_payload_rejects_unknown_fields(self):
        from repro.api import ValidationError, build_workflow_request

        with pytest.raises(ValidationError, match="unknown"):
            build_workflow_request("negotiate", {"bogus": 1})

    def test_job_request_validates_its_inner_request_eagerly(self):
        from repro.api import JobRequest, ValidationError

        with pytest.raises(ValidationError, match="--num-choices"):
            JobRequest(workflow="negotiate", request={"num_choices": -1})

    def test_job_request_round_trips_through_its_envelope(self):
        from repro.api import JobRequest

        job = JobRequest(workflow="negotiate", request={"trials": 5})
        restored = JobRequest.from_json_dict(job.to_json_dict())
        assert restored == job
        assert restored.typed_request() == job.typed_request()


class TestJobStatusResult:
    def test_terminal_states(self):
        from repro.api import JobStatusResult
        from repro.api.results import JOB_STATES

        for state in JOB_STATES:
            status = JobStatusResult(
                job_id="j", workflow="negotiate", state=state, progress={}
            )
            assert status.is_terminal == (state in ("done", "failed", "cancelled"))

    def test_unknown_state_is_rejected(self):
        from repro.api import JobStatusResult
        from repro.errors import EnvelopeError

        with pytest.raises(EnvelopeError, match="unknown job state"):
            JobStatusResult(job_id="j", workflow="negotiate", state="paused", progress={})

    def test_round_trips_through_its_envelope(self):
        from repro.api import JobStatusResult

        status = JobStatusResult(
            job_id="j-1",
            workflow="sweep",
            state="running",
            progress={"completed": 2, "total": 9},
        )
        restored = JobStatusResult.from_json_dict(status.to_json_dict())
        assert restored == status
