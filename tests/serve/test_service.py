"""Service routing: envelopes in, envelopes out, cache discipline."""

import json

import pytest

import asyncio

from repro.api import NegotiateRequest, Session
from repro.api.validate import validate_envelope
from repro.serve.http import HttpRequest
from repro.serve.service import ServeService, serialize_envelope


def handle(service: ServeService, method: str, path: str, payload=None):
    status, body, _ = handle_full(service, method, path, payload)
    return status, body


def handle_full(service: ServeService, method: str, path: str, payload=None):
    body = b"" if payload is None else json.dumps(payload).encode()
    request = HttpRequest(method=method, path=path, query="", body=body)
    return asyncio.run(service.handle(request))


@pytest.fixture()
def service():
    return ServeService(Session(), coalesce_window_ms=0.0, cache_entries=8)


TINY_NEGOTIATE = {"num_choices": 10, "trials": 5, "seed": 3}


class TestIntrospectionRoutes:
    def test_health(self, service):
        status, body = handle(service, "GET", "/v1/health")
        assert status == 200
        document = json.loads(body)
        assert validate_envelope(document) == []
        assert document["status"] == "ok"

    def test_stats_envelope_validates(self, service):
        handle(service, "POST", "/v1/negotiate", TINY_NEGOTIATE)
        status, body = handle(service, "GET", "/v1/stats")
        assert status == 200
        document = json.loads(body)
        assert validate_envelope(document) == []
        # The /stats request counts itself: negotiate + stats.
        assert document["requests_total"] == 2
        assert document["result_cache"]["misses"] == 1
        assert "truthful_nash_products" in document["session"]
        # The cross-worker fields of the merged view.
        assert document["worker_pid"] == service.board.pid
        assert str(service.board.pid) in document["workers"]
        assert document["jobs"]["queued"] == 0

    def test_health_rejects_post(self, service):
        status, body = handle(service, "POST", "/v1/health")
        assert status == 405
        assert json.loads(body)["exit_code"] == 2

    def test_every_response_names_its_worker(self, service):
        _, _, headers = handle_full(service, "GET", "/v1/health")
        assert headers["X-Repro-Worker"] == str(service.board.pid)


class TestVersionedRouting:
    def test_legacy_path_carries_the_deprecation_marker(self, service):
        status, body, headers = handle_full(service, "GET", "/health")
        assert status == 200
        assert headers["Deprecation"] == "true"
        document = json.loads(body)
        assert validate_envelope(document) == []
        assert document["meta"] == {"deprecated": True}

    def test_canonical_path_is_unmarked(self, service):
        status, body, headers = handle_full(service, "GET", "/v1/health")
        assert status == 200
        assert "Deprecation" not in headers
        assert "meta" not in json.loads(body)

    def test_legacy_body_differs_only_by_the_marker(self, service):
        _, canonical, _ = handle_full(
            service, "POST", "/v1/negotiate", TINY_NEGOTIATE
        )
        _, legacy, headers = handle_full(
            service, "POST", "/negotiate", TINY_NEGOTIATE
        )
        assert headers["Deprecation"] == "true"
        marked = json.loads(legacy)
        assert marked.pop("meta") == {"deprecated": True}
        assert marked == json.loads(canonical)

    def test_both_forms_share_one_cache_entry(self, service):
        handle(service, "POST", "/v1/negotiate", TINY_NEGOTIATE)
        handle(service, "POST", "/negotiate", TINY_NEGOTIATE)
        stats = service.cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1


class TestWorkflowRoutes:
    def test_negotiate_matches_the_direct_session_bytes(self, service):
        status, body = handle(service, "POST", "/v1/negotiate", TINY_NEGOTIATE)
        assert status == 200
        expected = serialize_envelope(
            Session().negotiate(NegotiateRequest(**TINY_NEGOTIATE)).to_json_dict()
        )
        assert body == expected
        assert validate_envelope(json.loads(body)) == []

    def test_v1_prefix_and_full_envelope_bodies(self, service):
        _, direct = handle(service, "POST", "/v1/negotiate", TINY_NEGOTIATE)
        envelope_body = NegotiateRequest(**TINY_NEGOTIATE).to_json_dict()
        status, body = handle(service, "POST", "/v1/negotiate", envelope_body)
        assert status == 200
        assert body == direct

    def test_empty_body_means_defaults(self, service):
        status, body = handle(service, "POST", "/v1/topology")
        assert status == 200
        document = json.loads(body)
        assert validate_envelope(document) == []
        assert document["seed"] == 2021

    def test_repeat_request_hits_the_cache(self, service):
        _, first = handle(service, "POST", "/v1/negotiate", TINY_NEGOTIATE)
        _, second = handle(service, "POST", "/v1/negotiate", TINY_NEGOTIATE)
        assert second == first
        stats = service.cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_diversity_cache_keys_on_topology_content(self, service, tmp_path):
        from repro.api import TopologyRequest

        path = tmp_path / "topo.as-rel.txt"
        tiny = dict(tier1=2, tier2=3, tier3=4, stubs=8)
        service.session.topology(TopologyRequest(seed=1, output=str(path), **tiny))
        payload = {"topology": str(path), "sample_size": 4, "seed": 1}
        handle(service, "POST", "/v1/diversity", payload)
        handle(service, "POST", "/v1/diversity", payload)
        assert service.cache.stats()["hits"] == 1
        # Same path, different *content*: the fingerprint key must miss
        # instead of replaying the stale body.
        service.session.topology(TopologyRequest(seed=2, output=str(path), **tiny))
        handle(service, "POST", "/v1/diversity", payload)
        stats = service.cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 2

    def test_side_effecting_requests_bypass_the_cache(self, service, tmp_path):
        target = tmp_path / "t.as-rel.txt"
        payload = {
            "tier1": 2,
            "tier2": 3,
            "tier3": 4,
            "stubs": 5,
            "seed": 1,
            "output": str(target),
        }
        handle(service, "POST", "/v1/topology", payload)
        assert target.exists()
        target.unlink()
        # A bypassing request re-runs the workflow (and its write).
        status, _ = handle(service, "POST", "/v1/topology", payload)
        assert status == 200
        assert target.exists()
        assert service.cache.stats()["size"] == 0


class TestSharedDiskCache:
    def test_two_services_share_one_store(self, tmp_path):
        """A result computed by one process-alike is a disk hit for another."""
        first = ServeService(
            Session(),
            coalesce_window_ms=0.0,
            cache_entries=8,
            state_dir=tmp_path / "state",
        )
        _, body = handle(first, "POST", "/v1/negotiate", TINY_NEGOTIATE)
        second = ServeService(
            Session(),
            coalesce_window_ms=0.0,
            cache_entries=8,
            state_dir=tmp_path / "state",
        )
        _, again = handle(second, "POST", "/v1/negotiate", TINY_NEGOTIATE)
        assert again == body
        stats = second.cache.stats()
        assert stats["disk_hits"] == 1
        assert stats["misses"] == 1  # memory tier missed, disk tier served

    def test_cache_entries_zero_disables_both_tiers(self, tmp_path):
        service = ServeService(
            Session(),
            coalesce_window_ms=0.0,
            cache_entries=0,
            state_dir=tmp_path / "state",
        )
        handle(service, "POST", "/v1/negotiate", TINY_NEGOTIATE)
        handle(service, "POST", "/v1/negotiate", TINY_NEGOTIATE)
        stats = service.cache.stats()
        assert stats["size"] == 0 and stats["store_writes"] == 0
        assert not (tmp_path / "state" / "results-cache").exists()


class TestErrorMapping:
    def test_unknown_path_is_404(self, service):
        status, body = handle(service, "POST", "/unknown")
        assert status == 404
        document = json.loads(body)
        assert validate_envelope(document) == []
        assert document["http_status"] == 404

    def test_validation_error_is_400_with_cli_exit_code(self, service):
        status, body = handle(
            service, "POST", "/v1/negotiate", {"num_choices": -1}
        )
        assert status == 400
        document = json.loads(body)
        assert validate_envelope(document) == []
        assert document["exit_code"] == 2
        assert "--num-choices must be a positive integer" in document["error"]

    def test_unknown_field_is_400(self, service):
        status, body = handle(service, "POST", "/v1/negotiate", {"bogus": 1})
        assert status == 400
        assert "unknown negotiate_request field" in json.loads(body)["error"]

    def test_malformed_json_body_is_400(self, service):
        request = HttpRequest(
            method="POST", path="/v1/negotiate", query="", body=b"{not json"
        )
        status, body, _ = asyncio.run(service.handle(request))
        assert status == 400
        assert "not valid JSON" in json.loads(body)["error"]

    def test_draining_service_answers_503(self, service):
        service.draining = True
        status, body = handle(service, "POST", "/v1/negotiate", TINY_NEGOTIATE)
        assert status == 503
        document = json.loads(body)
        assert document["http_status"] == 503
        # /health still answers, reporting the drain.
        status, body = handle(service, "GET", "/v1/health")
        assert status == 200
        assert json.loads(body)["status"] == "draining"


class TestRequestLogFields:
    def test_log_records_cache_and_batch_fields(self, service, tmp_path):
        import os

        from repro.serve.log import RequestLog

        service.log = RequestLog(str(tmp_path / "requests.jsonl"))
        handle(service, "POST", "/v1/negotiate", TINY_NEGOTIATE)
        handle(service, "POST", "/v1/negotiate", TINY_NEGOTIATE)
        handle(service, "GET", "/v1/stats")
        service.log.close()
        records = [
            json.loads(line)
            for line in (tmp_path / "requests.jsonl").read_text().splitlines()
        ]
        assert [validate_envelope(r) for r in records] == [[], [], []]
        miss, hit, stats = records
        assert miss["cache"] == "miss" and miss["batch_size"] == 1
        assert hit["cache"] == "hit" and "batch_size" not in hit
        assert stats["kind_handled"] == "serve_stats"
        assert all(r["latency_ms"] >= 0 for r in records)
        assert all(r["queue_depth"] == 0 for r in records)
        assert all(r["pid"] == os.getpid() for r in records)
