"""Result cache: fingerprint keys and byte replay."""

from repro.api.requests import DiversityRequest, NegotiateRequest
from repro.serve.cache import ResultCache, request_fingerprint


class TestRequestFingerprint:
    def test_equal_requests_share_a_key(self):
        a = NegotiateRequest(num_choices=10, trials=5, seed=3)
        b = NegotiateRequest(seed=3, trials=5, num_choices=10)
        assert request_fingerprint(a) == request_fingerprint(b)

    def test_any_parameter_changes_the_key(self):
        base = NegotiateRequest(num_choices=10, trials=5, seed=3)
        for changed in (
            NegotiateRequest(num_choices=11, trials=5, seed=3),
            NegotiateRequest(num_choices=10, trials=6, seed=3),
            NegotiateRequest(num_choices=10, trials=5, seed=4),
            NegotiateRequest(distribution="u2", num_choices=10, trials=5, seed=3),
        ):
            assert request_fingerprint(changed) != request_fingerprint(base)

    def test_request_kinds_never_collide(self):
        # Same field values under different kinds must key differently.
        assert request_fingerprint(DiversityRequest()) != request_fingerprint(
            NegotiateRequest()
        )

    def test_extra_content_identity_changes_the_key(self):
        request = DiversityRequest(topology="topo.txt", sample_size=10, seed=1)
        first = request_fingerprint(request, extra={"topology_fingerprint": "aa"})
        second = request_fingerprint(request, extra={"topology_fingerprint": "bb"})
        assert first != second
        assert first != request_fingerprint(request)


class TestResultCache:
    def test_lookup_miss_then_hit_replays_exact_bytes(self):
        cache = ResultCache(4)
        assert cache.lookup("k") is None
        cache.store("k", b"body-bytes\n")
        assert cache.lookup("k") == b"body-bytes\n"
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_lru_bound_and_eviction_counter(self):
        cache = ResultCache(2)
        cache.store("a", b"1")
        cache.store("b", b"2")
        cache.lookup("a")  # "b" becomes the LRU tail
        cache.store("c", b"3")
        assert cache.lookup("b") is None
        assert cache.lookup("a") == b"1"
        assert cache.stats()["evictions"] == 1

    def test_zero_entries_disables_caching(self):
        cache = ResultCache(0)
        cache.store("a", b"1")
        assert cache.lookup("a") is None
        assert cache.stats()["size"] == 0
