"""The pre-fork supervisor: shared accept, crash restart, coordinated drain.

These tests launch ``repro serve --workers 2`` as a real child process
(the supervisor forks the workers) and exercise the properties the
multi-process design promises: one listen queue feeding every worker,
byte-identical answers regardless of which worker serves, a shared
on-disk result cache that survives the death of the worker that filled
it, automatic restart of SIGKILLed workers, and a SIGTERM fan-out that
drains every worker before the supervisor exits 0.
"""

from __future__ import annotations

import os
import signal
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.api import NegotiateRequest, Session
from repro.serve.client import ServeClient

TINY_NEGOTIATE = {"num_choices": 10, "trials": 5, "seed": 3}
WORKER_ARGS = ["--workers", "2", "--coalesce-window-ms", "0"]


def _pid_wave(port: int, clients: int = 8) -> tuple[set[int], list[bytes]]:
    """Concurrent fresh-connection requests; the pids and bodies seen."""

    def one_request(_: int) -> tuple[int, bytes]:
        with ServeClient("127.0.0.1", port) as client:
            response = client.raw_post("/v1/negotiate", TINY_NEGOTIATE)
            assert response.status == 200
            assert response.worker_pid is not None
            return response.worker_pid, response.body

    with ThreadPoolExecutor(max_workers=clients) as pool:
        results = list(pool.map(one_request, range(clients)))
    return {pid for pid, _ in results}, [body for _, body in results]


def _collect_pids(port: int, *, need: int = 2, waves: int = 12) -> set[int]:
    """Fire waves of concurrent clients until ``need`` distinct pids answer."""
    seen: set[int] = set()
    for _ in range(waves):
        pids, _ = _pid_wave(port)
        seen |= pids
        if len(seen) >= need:
            break
    return seen


class TestMultiWorkerAccept:
    def test_both_workers_serve_the_shared_socket(self, serve_process):
        server = serve_process(WORKER_ARGS)
        seen = _collect_pids(server.port)
        assert len(seen) >= 2
        # Every body in a wave is byte-identical no matter which worker
        # computed it — the contract the bench's multi-worker tier relies on.
        pids, bodies = _pid_wave(server.port)
        assert len(set(bodies)) == 1
        assert server.terminate_and_wait() == 0

    def test_stats_merge_counts_every_worker(self, serve_process):
        server = serve_process(WORKER_ARGS)
        seen = _collect_pids(server.port)
        with ServeClient("127.0.0.1", server.port) as client:
            stats = client.stats()
        workers = {int(pid) for pid in stats["workers"]}
        assert seen <= workers
        total_per_worker = sum(
            entry["requests_total"] for entry in stats["workers"].values()
        )
        assert stats["requests_total"] == total_per_worker
        assert server.terminate_and_wait() == 0

    def test_responses_match_the_sequential_session(self, serve_process):
        server = serve_process(WORKER_ARGS)
        with ServeClient("127.0.0.1", server.port) as client:
            served = client.negotiate(NegotiateRequest(**TINY_NEGOTIATE))
        expected = Session().negotiate(NegotiateRequest(**TINY_NEGOTIATE))
        assert served == expected
        assert server.terminate_and_wait() == 0


class TestCrashRestart:
    def test_sigkilled_worker_drops_no_requests_and_is_replaced(
        self, serve_process
    ):
        """The headline resilience property, under concurrent client load.

        Warm the shared cache through one worker, SIGKILL that exact
        worker, then immediately load the server with 8 concurrent
        clients: every request succeeds with the byte-identical cached
        body (a surviving worker serves it from the shared disk store),
        and within a few seconds the supervisor has forked a
        replacement worker.
        """
        server = serve_process(WORKER_ARGS)
        with ServeClient("127.0.0.1", server.port) as client:
            warm = client.raw_post("/v1/negotiate", TINY_NEGOTIATE)
        assert warm.status == 200
        victim = warm.worker_pid
        assert victim is not None

        os.kill(victim, signal.SIGKILL)

        # No dropped connections: the shared listen queue means the
        # sibling accepts everything while the victim is being replaced.
        pids, bodies = _pid_wave(server.port, clients=8)
        assert set(bodies) == {warm.body}
        assert victim not in pids

        # The computing worker is dead, so these replays came off the
        # shared disk store: some surviving worker counted a disk hit.
        with ServeClient("127.0.0.1", server.port) as client:
            stats = client.stats()
        assert stats["result_cache"]["disk_hits"] >= 1

        # The supervisor restarts the victim: a brand-new pid joins.
        deadline = time.monotonic() + 10.0
        replacement_seen = False
        while time.monotonic() < deadline and not replacement_seen:
            current, _ = _pid_wave(server.port)
            replacement_seen = bool(current - {victim} - pids)
            if not replacement_seen:
                time.sleep(0.2)
        assert replacement_seen, "no replacement worker appeared within 10s"
        assert server.terminate_and_wait() == 0

    def test_sigterm_drains_every_worker_to_exit_zero(self, serve_process):
        server = serve_process(WORKER_ARGS)
        _collect_pids(server.port)  # both workers have served traffic
        assert server.terminate_and_wait() == 0

    def test_sigkilled_supervisor_leaves_no_orphan_workers(self, serve_process):
        """SIGKILL skips the supervisor's SIGTERM fan-out entirely, so
        the workers themselves must notice the parent death (PDEATHSIG
        on Linux, the ppid watchdog elsewhere) and drain — nothing may
        keep holding the shared socket."""
        server = serve_process(WORKER_ARGS)
        worker_pids = _collect_pids(server.port)
        assert len(worker_pids) >= 2

        server.proc.kill()
        server.proc.wait(timeout=10)

        deadline = time.monotonic() + 10.0
        alive = set(worker_pids)
        while time.monotonic() < deadline and alive:
            for pid in list(alive):
                try:
                    os.kill(pid, 0)
                except ProcessLookupError:
                    alive.discard(pid)
            if alive:
                time.sleep(0.1)
        assert not alive, f"workers outlived the supervisor: {sorted(alive)}"


class TestJobsAcrossWorkers:
    def test_job_submitted_to_one_worker_is_pollable_via_any(
        self, serve_process, tmp_path
    ):
        """The directory-backed job store is the cross-worker contract:
        submit and poll ride separate fresh connections (hence, with two
        workers, frequently different processes) and still agree."""
        server = serve_process([*WORKER_ARGS, "--state-dir", str(tmp_path)])
        with ServeClient("127.0.0.1", server.port) as client:
            submitted = client.jobs.submit("negotiate", TINY_NEGOTIATE)
        assert submitted.state == "queued"
        with ServeClient("127.0.0.1", server.port) as client:
            final = client.jobs.wait(submitted.job_id, timeout=60.0)
        assert final.state == "done"
        expected = Session().negotiate(NegotiateRequest(**TINY_NEGOTIATE))
        assert final.result == expected.to_json_dict()
        # The job's crash-safe record is plain files under the state dir.
        job_dir = tmp_path / "jobs" / submitted.job_id
        assert (job_dir / "result.json").exists()
        assert server.terminate_and_wait() == 0

    def test_killing_the_claiming_worker_requeues_the_job(
        self, serve_process, tmp_path
    ):
        """A worker dying mid-job leaves a resumable record: the
        supervisor requeues the orphan and another worker finishes it."""
        server = serve_process(
            ["--workers", "2", "--state-dir", str(tmp_path)]
        )
        with ServeClient("127.0.0.1", server.port) as client:
            submitted = client.jobs.submit(
                "negotiate", {"num_choices": 64, "trials": 800, "seed": 9}
            )
            # Wait for a worker to claim it, then kill that worker.
            claimant = None
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                claim = tmp_path / "jobs" / submitted.job_id / "claim"
                try:
                    claimant = int(claim.read_text().strip())
                    break
                except (FileNotFoundError, ValueError):
                    time.sleep(0.02)
            assert claimant is not None, "no worker claimed the job within 30s"
            os.kill(claimant, signal.SIGKILL)
        # The submit connection may have been pinned to the dead worker;
        # poll on a fresh one.
        with ServeClient("127.0.0.1", server.port) as client:
            final = client.jobs.wait(submitted.job_id, timeout=90.0)
        assert final.state == "done"
        assert server.terminate_and_wait() == 0


class TestSingleWorkerPath:
    def test_workers_one_keeps_the_in_process_server(self, serve_process):
        """``--workers 1`` must not fork: the discovery line and drain
        behavior of the original single-process path are unchanged."""
        server = serve_process(["--workers", "1", "--coalesce-window-ms", "0"])
        pids, _ = _pid_wave(server.port)
        assert pids == {server.proc.pid}
        assert server.terminate_and_wait() == 0

    def test_workers_zero_is_rejected(self):
        from repro.errors import ValidationError
        from repro.serve.server import ServeConfig

        with pytest.raises(ValidationError):
            ServeConfig(workers=0)
