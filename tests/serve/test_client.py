"""The typed ``ServeClient``: Session's surface over the wire.

One server process serves the whole module (the client tests pin
client-side behavior, not server lifecycles), and every typed method is
checked against the same workflow run through a local
:class:`~repro.api.Session` — the client's promise is that the two are
indistinguishable, results and raised exceptions alike.
"""

from __future__ import annotations

import pytest

from repro.api import (
    DiversityRequest,
    NegotiateRequest,
    Session,
    SimulateRequest,
    TopologyRequest,
)
from repro.api.results import JobStatusResult
from repro.errors import ReproError, ServiceError, ValidationError
from repro.serve.client import ServeClient, ServeResponse, _error_from_envelope


SERVER_ARGS = ["--coalesce-window-ms", "0"]


@pytest.fixture()
def client(module_server):
    with ServeClient("127.0.0.1", module_server.port) as c:
        yield c


class TestTypedRoutes:
    def test_negotiate_returns_the_sessions_typed_result(self, client):
        request = NegotiateRequest(num_choices=10, trials=5, seed=3)
        assert client.negotiate(request) == Session().negotiate(request)

    def test_default_request_mirrors_session_defaults(self, client, tmp_path):
        request = SimulateRequest(duration=100, seed=7)
        served = client.simulate(request)
        assert served == Session().simulate(request)

    def test_topology_then_diversity_roundtrip(self, client, tmp_path):
        path = tmp_path / "client.as-rel.txt"
        topo = client.topology(
            TopologyRequest(
                tier1=2, tier2=3, tier3=4, stubs=8, seed=1, output=str(path)
            )
        )
        assert path.exists()
        request = DiversityRequest(topology=str(path), sample_size=4, seed=1)
        served = client.diversity(request)
        assert served.sample_size == 4
        assert served == Session().diversity(request)
        assert topo.num_ases > 0

    def test_health_and_stats_are_decoded_envelopes(self, client):
        assert client.health()["status"] == "ok"
        stats = client.stats()
        assert stats["kind"] == "serve_stats"
        assert str(client.last_worker_pid) in stats["workers"]

    def test_every_response_reports_its_worker(self, client):
        response = client.raw_get("/v1/health")
        assert response.worker_pid is not None
        assert client.last_worker_pid == response.worker_pid


class TestTypedErrors:
    def test_validation_error_raises_like_a_local_session(self, client, tmp_path):
        # Typed requests validate eagerly, so the server-side failure a
        # client can actually see is one the session discovers at run
        # time — here, a topology file that does not exist.
        request = DiversityRequest(
            topology=str(tmp_path / "absent.as-rel.txt"), sample_size=4
        )
        with pytest.raises(ValidationError) as served:
            client.diversity(request)
        with pytest.raises(ValidationError) as local:
            Session().diversity(request)
        assert str(served.value) == str(local.value)

    def test_wire_level_validation_error_is_typed_too(self, client):
        response = client.raw_post("/v1/negotiate", {"num_choices": -1})
        assert response.status == 400
        with pytest.raises(ValidationError, match="--num-choices"):
            client._decoded(response)

    def test_non_envelope_body_is_a_service_error(self):
        client = ServeClient("127.0.0.1", 1)
        response = ServeResponse(200, b"[]")
        with pytest.raises(ServiceError, match="non-envelope"):
            client._decoded(response)
        with pytest.raises(ServiceError, match="non-JSON"):
            client._decoded(ServeResponse(200, b"not json"))

    def test_unexpected_status_is_a_service_error(self):
        client = ServeClient("127.0.0.1", 1)
        with pytest.raises(ServiceError, match="unexpected status 204"):
            client._decoded(ServeResponse(204, b"{}"))

    def test_error_envelope_decoding_handles_garbage(self):
        error = _error_from_envelope({"error": 1, "exit_code": "x"})
        assert isinstance(error, ReproError)
        assert str(error) == "1"


class TestJobsNamespace:
    PAYLOAD = {"num_choices": 10, "trials": 5, "seed": 3}

    def test_submit_poll_wait_roundtrip(self, client):
        submitted = client.jobs.submit("negotiate", self.PAYLOAD)
        assert isinstance(submitted, JobStatusResult)
        assert submitted.state == "queued"
        observed = client.jobs.poll(submitted.job_id)
        assert observed.job_id == submitted.job_id
        final = client.jobs.wait(submitted.job_id, timeout=60.0)
        assert final.state == "done"
        expected = Session().negotiate(NegotiateRequest(**self.PAYLOAD))
        assert final.result == expected.to_json_dict()

    def test_submit_accepts_a_typed_request(self, client):
        submitted = client.jobs.submit(
            "negotiate", NegotiateRequest(**self.PAYLOAD)
        )
        final = client.jobs.wait(submitted.job_id, timeout=60.0)
        assert final.state == "done"

    def test_failed_job_raises_the_mapped_error(self, client, tmp_path):
        submitted = client.jobs.submit(
            "simulate",
            {
                "duration": 1,
                "trace_out": str(tmp_path / "no-such-dir" / "t.jsonl"),
            },
        )
        # OutputError's (1, 500) pair maps client-side to ServiceError.
        with pytest.raises(ServiceError, match="trace"):
            client.jobs.wait(submitted.job_id, timeout=60.0)
        final = client.jobs.wait(
            submitted.job_id, timeout=60.0, raise_on_failure=False
        )
        assert final.state == "failed"

    def test_invalid_submission_raises_at_submit_time(self, client):
        with pytest.raises(ValidationError, match="--num-choices"):
            client.jobs.submit("negotiate", {"num_choices": -1})
        with pytest.raises(ValidationError, match="unknown workflow"):
            client.jobs.submit("bogus", {})

    def test_cancel_a_queued_job(self, client):
        # Occupy the single runner with a slow job, then submit + cancel
        # a second one while it is still queued behind the first.
        blocker = client.jobs.submit(
            "negotiate", {"num_choices": 64, "trials": 400, "seed": 1}
        )
        victim = client.jobs.submit("negotiate", self.PAYLOAD)
        cancelled = client.jobs.cancel(victim.job_id)
        assert cancelled.state == "cancelled"
        final = client.jobs.wait(victim.job_id, timeout=30.0)
        assert final.state == "cancelled"
        assert client.jobs.wait(blocker.job_id, timeout=60.0).state == "done"

    def test_wait_times_out(self, client):
        blocker = client.jobs.submit(
            "negotiate", {"num_choices": 64, "trials": 400, "seed": 2}
        )
        with pytest.raises(TimeoutError, match=blocker.job_id):
            client.jobs.wait(blocker.job_id, timeout=0.0)
        assert client.jobs.wait(blocker.job_id, timeout=60.0).state == "done"
