"""HTTP framing: parsing, limits, keep-alive, response serialization."""

import asyncio

import pytest

from repro.serve.http import (
    HttpProtocolError,
    read_request,
    response_bytes,
)


def parse(raw: bytes, **kwargs):
    """Feed raw bytes to a StreamReader and parse one request."""

    async def run():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader, **kwargs)

    return asyncio.run(run())


class TestParsing:
    def test_get_with_query_and_headers(self):
        request = parse(
            b"GET /stats?verbose=1 HTTP/1.1\r\n"
            b"Host: localhost\r\n"
            b"X-Custom: Value \r\n"
            b"\r\n"
        )
        assert request.method == "GET"
        assert request.path == "/stats"
        assert request.query == "verbose=1"
        # Header names are lower-cased, values stripped.
        assert request.headers["x-custom"] == "Value"
        assert request.body == b""

    def test_post_reads_exactly_content_length(self):
        request = parse(
            b"POST /negotiate HTTP/1.1\r\n"
            b"Content-Length: 4\r\n"
            b"\r\n"
            b'{"a"trailing-garbage'
        )
        assert request.method == "POST"
        assert request.body == b'{"a"'

    def test_clean_eof_returns_none(self):
        assert parse(b"") is None

    def test_keep_alive_is_the_default(self):
        request = parse(b"GET / HTTP/1.1\r\n\r\n")
        assert request.wants_keep_alive()

    def test_connection_close_is_honored(self):
        request = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
        assert not request.wants_keep_alive()


class TestRejection:
    def test_malformed_request_line(self):
        with pytest.raises(HttpProtocolError, match="malformed request line"):
            parse(b"NOT-HTTP\r\n\r\n")

    def test_unsupported_protocol_version(self):
        with pytest.raises(HttpProtocolError, match="unsupported protocol"):
            parse(b"GET / SPDY/9\r\n\r\n")

    def test_malformed_header_line(self):
        with pytest.raises(HttpProtocolError, match="malformed header"):
            parse(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n")

    def test_bad_content_length(self):
        with pytest.raises(HttpProtocolError, match="malformed Content-Length"):
            parse(b"POST / HTTP/1.1\r\nContent-Length: many\r\n\r\n")

    def test_oversized_body_rejected_before_reading(self):
        with pytest.raises(HttpProtocolError, match="exceeds"):
            parse(
                b"POST / HTTP/1.1\r\nContent-Length: 100\r\n\r\n",
                max_body=10,
            )

    def test_truncated_body(self):
        with pytest.raises(HttpProtocolError, match="ended early"):
            parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort")

    def test_chunked_uploads_unsupported(self):
        with pytest.raises(HttpProtocolError, match="chunked"):
            parse(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")


class TestResponse:
    def test_response_bytes_frames_body_exactly(self):
        raw = response_bytes(200, b'{"ok": true}\n')
        head, _, body = raw.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK\r\n")
        assert b"Content-Length: 13\r\n" in head
        assert head.endswith(b"Connection: keep-alive")
        assert body == b'{"ok": true}\n'

    def test_close_and_unknown_status(self):
        raw = response_bytes(599, b"", keep_alive=False)
        assert raw.startswith(b"HTTP/1.1 599 Unknown\r\n")
        assert b"Connection: close\r\n" in raw
