"""Fixtures for the serve tests: a real server in a subprocess.

The integration tests exercise the full stack — sockets, the event
loop, signal handling — exactly as a deployment would, so they launch
``repro serve`` as a child process bound to an ephemeral port
(``--port 0``) and discover the port from the flushed startup line.
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
from pathlib import Path

import pytest

SRC_DIR = str(Path(__file__).resolve().parents[2] / "src")


class ServeProcess:
    """A running ``repro serve`` child, plus its discovered port."""

    def __init__(self, args: list[str]) -> None:
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", "--port", "0", *args],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
            text=True,
        )
        line = self.proc.stdout.readline()
        match = re.search(r"listening on http://[^:]+:(\d+)", line)
        if not match:  # pragma: no cover - startup failure diagnostics
            self.proc.kill()
            raise RuntimeError(
                f"serve did not start: {line!r}\n{self.proc.stderr.read()}"
            )
        self.port = int(match.group(1))

    def terminate_and_wait(self, timeout: float = 60.0) -> int:
        """SIGTERM the server and return its exit code (drained shutdown)."""
        self.proc.send_signal(signal.SIGTERM)
        return self.proc.wait(timeout=timeout)

    def kill(self) -> None:
        if self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait(timeout=10)


@pytest.fixture(scope="module")
def module_server(request):
    """One server shared by a whole module (args from ``SERVER_ARGS``)."""
    args = list(getattr(request.module, "SERVER_ARGS", []))
    process = ServeProcess(args)
    yield process
    process.kill()


@pytest.fixture()
def serve_process():
    """Launcher fixture: ``serve_process(["--flag", ...]) -> ServeProcess``."""
    started: list[ServeProcess] = []

    def launch(args: list[str]) -> ServeProcess:
        process = ServeProcess(args)
        started.append(process)
        return process

    yield launch
    for process in started:
        process.kill()
