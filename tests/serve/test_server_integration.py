"""End-to-end contracts of the running server.

The two acceptance properties of the serve subsystem are pinned here
against a real child process:

1. **Coalescing is invisible in the results.** With a coalescing window
   open and ≥ 8 concurrent clients, every response body is byte-
   identical to what a sequential single-client run produces for the
   same request (the direct in-process session path — which the serve
   test suite separately pins equal to the one-at-a-time server).

2. **Shutdown is a drain.** SIGTERM with requests in flight exits 0,
   answers every accepted request, and leaves a request log of complete
   JSONL lines, every one a valid ``serve_log_record`` envelope.
"""

from __future__ import annotations

import json
from concurrent.futures import ThreadPoolExecutor

from repro.api import NegotiateRequest, Session
from repro.api.validate import validate_envelope
from repro.serve.client import ServeClient
from repro.serve.service import serialize_envelope

CLIENTS = 8
TINY = {"num_choices": 10, "trials": 5}


def post_negotiate(port: int, seed: int) -> bytes:
    with ServeClient("127.0.0.1", port) as client:
        response = client.post("/v1/negotiate", {**TINY, "seed": seed})
        assert response.status == 200
        return response.body


class TestCoalescedByteIdentity:
    def test_concurrent_clients_match_the_sequential_path(self, serve_process):
        server = serve_process(
            ["--coalesce-window-ms", "50", "--max-batch", "32"]
        )
        seeds = list(range(100, 100 + CLIENTS))
        with ThreadPoolExecutor(max_workers=CLIENTS) as pool:
            bodies = list(
                pool.map(lambda seed: post_negotiate(server.port, seed), seeds)
            )

        # The sequential reference: one warm session, one request at a
        # time, serialized exactly like the CLI's --format json.
        session = Session()
        for seed, body in zip(seeds, bodies):
            expected = serialize_envelope(
                session.negotiate(
                    NegotiateRequest(seed=seed, **TINY)
                ).to_json_dict()
            )
            assert body == expected, f"seed {seed} diverged under coalescing"

        # The run must actually have coalesced — otherwise this test
        # proves nothing about cross-client batching.
        with ServeClient("127.0.0.1", server.port) as client:
            stats = client.get("/v1/stats").json()
        assert validate_envelope(stats) == []
        assert stats["coalescing"]["max_batch_size"] > 1
        assert stats["coalescing"]["coalesced_requests"] > 1
        assert server.terminate_and_wait() == 0

    def test_coalesced_equals_one_at_a_time_server(self, serve_process):
        coalesced = serve_process(["--coalesce-window-ms", "50"])
        sequential = serve_process(["--coalesce-window-ms", "0"])
        seeds = list(range(200, 200 + CLIENTS))
        with ThreadPoolExecutor(max_workers=CLIENTS) as pool:
            concurrent_bodies = list(
                pool.map(
                    lambda seed: post_negotiate(coalesced.port, seed), seeds
                )
            )
        sequential_bodies = [
            post_negotiate(sequential.port, seed) for seed in seeds
        ]
        assert concurrent_bodies == sequential_bodies
        assert coalesced.terminate_and_wait() == 0
        assert sequential.terminate_and_wait() == 0


class TestMixedWorkloads:
    def test_every_route_answers_valid_envelopes(self, serve_process):
        server = serve_process([])
        with ServeClient("127.0.0.1", server.port) as client:
            responses = [
                client.get("/v1/health"),
                client.post(
                    "/v1/topology",
                    {"tier1": 2, "tier2": 3, "tier3": 4, "stubs": 8, "seed": 1},
                ),
                client.post("/v1/negotiate", {**TINY, "seed": 5}),
                client.post("/v1/simulate", {"scenario": "failure-churn"}),
                client.get("/v1/stats"),
            ]
        for response in responses:
            assert response.status == 200
            assert validate_envelope(response.json()) == []
        assert server.terminate_and_wait() == 0


class TestGracefulDrain:
    def test_sigterm_drains_and_leaves_complete_log_lines(
        self, serve_process, tmp_path
    ):
        log_path = tmp_path / "requests.jsonl"
        server = serve_process(
            [
                "--coalesce-window-ms",
                "25",
                "--request-log",
                str(log_path),
            ]
        )
        # One synchronous request guarantees the log is non-empty even
        # if the signal wins every race below.
        post_negotiate(server.port, 299)

        def tolerant_post(seed: int) -> int | None:
            """Status code, or None when the socket already closed."""
            try:
                with ServeClient("127.0.0.1", server.port) as client:
                    return client.post("/v1/negotiate", {**TINY, "seed": seed}).status
            except OSError:
                return None

        seeds = list(range(300, 300 + CLIENTS))
        with ThreadPoolExecutor(max_workers=CLIENTS) as pool:
            futures = [pool.submit(tolerant_post, seed) for seed in seeds]
            # SIGTERM while the batch window is plausibly still open:
            # the drain must answer every *accepted* request first.
            exit_code = server.terminate_and_wait()
            statuses = [future.result() for future in futures]

        assert exit_code == 0
        # Accepted requests completed (200) or were refused as draining
        # (503); refused connections surface as None.  Nothing hangs,
        # nothing is half-answered.
        assert set(statuses) <= {200, 503, None}
        raw = log_path.read_bytes()
        assert raw.endswith(b"\n"), "log must end on a line boundary"
        records = [
            json.loads(line) for line in raw.decode("utf-8").splitlines()
        ]
        assert records, "drained server must have logged its requests"
        for record in records:
            assert validate_envelope(record) == []
            assert record["status"] in (200, 503)
