"""Coalescing scheduler: grouping, flushing, isolation, drain.

These tests drive the scheduler with an instrumented fake solver, so
they pin the *scheduling* contract (what gets batched with what, and
when) independently of the engine.  The result-level contract — that a
coalesced batch is bit-identical to the sequential path — is pinned
end-to-end in ``test_server_integration.py`` and at the session layer
in ``tests/api/test_session.py``.
"""

import asyncio

import pytest

from repro.api.requests import NegotiateRequest
from repro.errors import ServiceError
from repro.serve.coalesce import CoalescingScheduler


class RecordingSolver:
    """Fake solve(): records each batch, returns one token per request."""

    def __init__(self, fail_on=None):
        self.batches = []
        self.fail_on = fail_on or set()

    async def __call__(self, requests):
        self.batches.append(list(requests))
        failing = [r for r in requests if r.seed in self.fail_on]
        if failing:
            raise ServiceError(f"poison seed {failing[0].seed}")
        return [("solved", r.seed) for r in requests]


def request(seed, num_choices=10):
    return NegotiateRequest(num_choices=num_choices, trials=5, seed=seed)


class TestGrouping:
    def test_concurrent_requests_share_one_batch(self):
        solver = RecordingSolver()

        async def run():
            scheduler = CoalescingScheduler(
                window_s=0.05, max_batch=32, solve=solver
            )
            return await asyncio.gather(
                *(scheduler.submit(request(seed)) for seed in range(4))
            )

        results = asyncio.run(run())
        assert len(solver.batches) == 1
        assert [r.seed for r in solver.batches[0]] == [0, 1, 2, 3]
        # Every waiter got its own result and the shared batch size.
        assert results == [(("solved", seed), 4) for seed in range(4)]

    def test_different_coalesce_keys_never_mix(self):
        solver = RecordingSolver()

        async def run():
            scheduler = CoalescingScheduler(
                window_s=0.05, max_batch=32, solve=solver
            )
            return await asyncio.gather(
                scheduler.submit(request(1, num_choices=10)),
                scheduler.submit(request(2, num_choices=20)),
            )

        results = asyncio.run(run())
        assert len(solver.batches) == 2
        assert all(size == 1 for _, size in results)

    def test_max_batch_flushes_early(self):
        solver = RecordingSolver()

        async def run():
            scheduler = CoalescingScheduler(
                # A window long enough that only max_batch can flush it.
                window_s=5.0,
                max_batch=2,
                solve=solver,
            )
            return await asyncio.gather(
                *(scheduler.submit(request(seed)) for seed in range(4))
            )

        results = asyncio.run(run())
        assert [len(batch) for batch in solver.batches] == [2, 2]
        assert all(size == 2 for _, size in results)

    def test_window_zero_disables_coalescing(self):
        solver = RecordingSolver()

        async def run():
            scheduler = CoalescingScheduler(
                window_s=0.0, max_batch=32, solve=solver
            )
            assert not scheduler.enabled
            return await asyncio.gather(
                *(scheduler.submit(request(seed)) for seed in range(3))
            )

        results = asyncio.run(run())
        assert [len(batch) for batch in solver.batches] == [1, 1, 1]
        assert all(size == 1 for _, size in results)


class TestFailureIsolation:
    def test_solo_failure_propagates(self):
        solver = RecordingSolver(fail_on={7})

        async def run():
            scheduler = CoalescingScheduler(
                window_s=0.0, max_batch=32, solve=solver
            )
            await scheduler.submit(request(7))

        with pytest.raises(ServiceError, match="poison seed 7"):
            asyncio.run(run())

    def test_poison_request_cannot_fail_batchmates(self):
        solver = RecordingSolver(fail_on={7})

        async def run():
            scheduler = CoalescingScheduler(
                window_s=0.05, max_batch=32, solve=solver
            )
            return await asyncio.gather(
                scheduler.submit(request(1)),
                scheduler.submit(request(7)),
                scheduler.submit(request(2)),
                return_exceptions=True,
            )

        healthy_one, poisoned, healthy_two = asyncio.run(run())
        # The mixed batch failed, so every member re-ran solo: the
        # healthy requests still succeed (batch_size 1, the sequential
        # path), only the poison request surfaces its error.
        assert healthy_one == (("solved", 1), 1)
        assert healthy_two == (("solved", 2), 1)
        assert isinstance(poisoned, ServiceError)
        assert len(solver.batches[0]) == 3
        assert [len(batch) for batch in solver.batches[1:]] == [1, 1, 1]

    def test_stats_count_retries(self):
        solver = RecordingSolver(fail_on={7})

        async def run():
            scheduler = CoalescingScheduler(
                window_s=0.05, max_batch=32, solve=solver
            )
            await asyncio.gather(
                scheduler.submit(request(1)),
                scheduler.submit(request(7)),
                return_exceptions=True,
            )
            return scheduler.stats()

        stats = asyncio.run(run())
        assert stats["solo_retries"] == 2
        assert stats["coalesced_requests"] == 2
        assert stats["max_batch_size"] == 2


class TestDrain:
    def test_drain_flushes_pending_windows(self):
        solver = RecordingSolver()

        async def run():
            scheduler = CoalescingScheduler(
                # Nothing would flush for an hour without the drain.
                window_s=3600.0,
                max_batch=32,
                solve=solver,
            )
            waiter = asyncio.ensure_future(scheduler.submit(request(5)))
            await asyncio.sleep(0)  # let the submit enqueue
            await scheduler.drain()
            return await waiter

        result, size = asyncio.run(run())
        assert result == ("solved", 5)
        assert size == 1
        assert len(solver.batches) == 1
