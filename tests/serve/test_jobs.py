"""The async job layer: crash-safe records, claims, runner execution."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.api import JobRequest, Session
from repro.api.validate import validate_envelope
from repro.serve.http import HttpRequest
from repro.serve.jobs import JobStore
from repro.serve.service import ServeService


def negotiate_job(**overrides) -> JobRequest:
    payload = {"num_choices": 10, "trials": 5, "seed": 3, **overrides}
    return JobRequest(workflow="negotiate", request=payload)


class TestJobStore:
    def test_submit_then_status_is_queued(self, tmp_path):
        store = JobStore(tmp_path)
        job_id = store.submit(negotiate_job())
        status = store.status(job_id)
        assert status.state == "queued"
        assert status.workflow == "negotiate"
        assert not status.is_terminal
        assert validate_envelope(status.to_json_dict()) == []

    def test_unknown_job_is_none(self, tmp_path):
        assert JobStore(tmp_path).status("no-such-job") is None

    def test_claim_marks_running_and_is_exclusive(self, tmp_path):
        store = JobStore(tmp_path)
        job_id = store.submit(negotiate_job())
        claimed = store.claim_next()
        assert claimed is not None and claimed[0] == job_id
        assert store.status(job_id).state == "running"
        # The O_EXCL claim file arbitrates: nobody else can claim it.
        assert store.claim_next() is None

    def test_claims_oldest_first(self, tmp_path):
        store = JobStore(tmp_path)
        first = store.submit(negotiate_job(seed=1))
        store.submit(negotiate_job(seed=2))
        assert store.claim_next()[0] == first

    def test_finish_publishes_the_result_envelope(self, tmp_path):
        store = JobStore(tmp_path)
        job_id = store.submit(negotiate_job())
        store.claim_next()
        result = {"schema_version": 1, "kind": "negotiate_result", "mean_pod": 1.0}
        store.finish(job_id, result)
        status = store.status(job_id)
        assert status.state == "done" and status.is_terminal
        assert status.result == result

    def test_fail_records_a_typed_error_envelope(self, tmp_path):
        from repro.errors import OutputError

        store = JobStore(tmp_path)
        job_id = store.submit(negotiate_job())
        store.claim_next()
        store.fail(job_id, OutputError("unwritable"))
        status = store.status(job_id)
        assert status.state == "failed"
        assert status.error["exit_code"] == 1
        assert status.error["http_status"] == 500
        assert validate_envelope(status.error) == []

    def test_cancel_only_affects_queued_jobs(self, tmp_path):
        store = JobStore(tmp_path)
        queued = store.submit(negotiate_job(seed=1))
        running = store.submit(negotiate_job(seed=2))
        store.claim_next()  # claims `queued` (oldest) — re-order:
        # the claim took the first submission, so cancel the second
        # while it is still queued and observe the first unaffected.
        assert store.cancel(running).state == "cancelled"
        assert store.cancel(queued).state == "running"
        assert store.cancel("missing") is None
        # A cancelled job is never claimed.
        assert store.claim_next() is None

    def test_requeue_orphans_releases_dead_claims(self, tmp_path):
        store = JobStore(tmp_path)
        job_id = store.submit(negotiate_job())
        store.claim_next(pid=999_999_999)  # a pid that cannot be alive
        assert store.status(job_id).state == "queued"  # dead claim ≠ running
        assert store.claim_next() is None  # ...but the claim file blocks
        assert store.requeue_orphans() == [job_id]
        claimed = store.claim_next()
        assert claimed is not None and claimed[0] == job_id

    def test_requeue_respects_the_supervisors_alive_set(self, tmp_path):
        import os

        store = JobStore(tmp_path)
        store.submit(negotiate_job())
        store.claim_next()  # claimed by *this* live process
        assert store.requeue_orphans(alive={os.getpid()}) == []
        assert store.requeue_orphans(alive=set()) != []

    def test_truncated_event_line_is_tolerated(self, tmp_path):
        store = JobStore(tmp_path)
        job_id = store.submit(negotiate_job())
        events = tmp_path / job_id / "events.jsonl"
        with open(events, "a", encoding="utf-8") as f:
            f.write('{"event": "progr')  # crash mid-append
        status = store.status(job_id)
        assert status.state == "queued"

    def test_counts_by_state(self, tmp_path):
        store = JobStore(tmp_path)
        store.submit(negotiate_job(seed=1))
        done = store.submit(negotiate_job(seed=2))
        store.cancel(done)
        counts = store.counts()
        assert counts["queued"] == 1 and counts["cancelled"] == 1


class TestJobRoutesAndRunner:
    """The HTTP surface plus the claim-and-execute loop, end to end."""

    @staticmethod
    def _handle(service, method, path, payload=None):
        body = b"" if payload is None else json.dumps(payload).encode()
        request = HttpRequest(method=method, path=path, query="", body=body)
        return service.handle(request)

    def _run_to_terminal(self, service, submit_payload):
        async def scenario():
            status, body, _ = await self._handle(
                service, "POST", "/v1/jobs", submit_payload
            )
            assert status == 202
            submitted = json.loads(body)
            assert validate_envelope(submitted) == []
            assert submitted["state"] == "queued"
            job_id = submitted["job_id"]
            service.job_runner.start()
            final = None
            for _ in range(400):
                poll_status, poll_body, _ = await self._handle(
                    service, "GET", f"/v1/jobs/{job_id}"
                )
                assert poll_status == 200
                final = json.loads(poll_body)
                assert validate_envelope(final) == []
                if final["state"] in ("done", "failed", "cancelled"):
                    break
                await asyncio.sleep(0.02)
            await service.job_runner.aclose()
            return final

        return asyncio.run(scenario())

    @pytest.fixture()
    def service(self, tmp_path):
        return ServeService(
            Session(),
            coalesce_window_ms=0.0,
            cache_entries=8,
            state_dir=tmp_path / "state",
        )

    def test_submitted_job_runs_to_done_with_the_session_result(self, service):
        payload = {
            "workflow": "negotiate",
            "request": {"num_choices": 10, "trials": 5, "seed": 3},
        }
        final = self._run_to_terminal(service, payload)
        assert final["state"] == "done"
        from repro.api import NegotiateRequest

        expected = service.session.negotiate(
            NegotiateRequest(num_choices=10, trials=5, seed=3)
        ).to_json_dict()
        assert final["result"] == expected

    def test_failing_job_becomes_a_failed_record(self, service, tmp_path):
        payload = {
            "workflow": "simulate",
            "request": {
                "duration": 1,
                "trace_out": str(tmp_path / "missing-dir" / "x" / "t.jsonl"),
            },
        }
        final = self._run_to_terminal(service, payload)
        assert final["state"] == "failed"
        assert final["error"]["http_status"] == 500

    def test_sweep_job_reports_progress(self, service):
        payload = {"workflow": "sweep", "request": {"smoke": True, "jobs": 1}}

        async def scenario():
            import tempfile

            with tempfile.TemporaryDirectory() as out:
                payload["request"]["out"] = out
                payload["request"]["cache_dir"] = out + "/cache"
                status, body, _ = await self._handle(
                    service, "POST", "/v1/jobs", payload
                )
                assert status == 202
                job_id = json.loads(body)["job_id"]
                service.job_runner.start()
                final = None
                for _ in range(2400):
                    final = service.jobs.status(job_id)
                    if final.is_terminal:
                        break
                    await asyncio.sleep(0.05)
                await service.job_runner.aclose()
                return final

        final = asyncio.run(scenario())
        assert final.state == "done"
        assert final.progress["total"] >= 1
        assert final.progress["completed"] == final.progress["total"]

    def test_invalid_submission_is_rejected_at_post_time(self, service):
        async def scenario():
            return await self._handle(
                service,
                "POST",
                "/v1/jobs",
                {"workflow": "negotiate", "request": {"num_choices": -1}},
            )

        status, body, _ = asyncio.run(scenario())
        assert status == 400
        assert "--num-choices" in json.loads(body)["error"]
        assert service.jobs.counts()["queued"] == 0

    def test_unknown_workflow_is_rejected(self, service):
        async def scenario():
            return await self._handle(
                service, "POST", "/v1/jobs", {"workflow": "bogus", "request": {}}
            )

        status, body, _ = asyncio.run(scenario())
        assert status == 400
        assert "unknown workflow" in json.loads(body)["error"]

    def test_poll_unknown_job_is_404(self, service):
        async def scenario():
            return await self._handle(service, "GET", "/v1/jobs/nope")

        status, body, _ = asyncio.run(scenario())
        assert status == 404
        assert json.loads(body)["http_status"] == 404

    def test_delete_cancels_a_queued_job(self, service):
        async def scenario():
            _, body, _ = await self._handle(
                service,
                "POST",
                "/v1/jobs",
                {"workflow": "negotiate", "request": {"trials": 5}},
            )
            job_id = json.loads(body)["job_id"]
            # The runner was never started, so the job is still queued.
            status, cancel_body, _ = await self._handle(
                service, "DELETE", f"/v1/jobs/{job_id}"
            )
            return status, json.loads(cancel_body)

        status, document = asyncio.run(scenario())
        assert status == 200
        assert document["state"] == "cancelled"
        assert validate_envelope(document) == []

    def test_draining_service_rejects_submissions(self, service):
        service.draining = True

        async def scenario():
            return await self._handle(
                service, "POST", "/v1/jobs", {"workflow": "negotiate", "request": {}}
            )

        status, body, _ = asyncio.run(scenario())
        assert status == 503
        assert json.loads(body)["http_status"] == 503
