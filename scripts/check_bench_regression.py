#!/usr/bin/env python3
"""CI benchmark regression gate.

Compares freshly emitted ``BENCH_<name>.json`` files (see
``benchmarks/_emit.py``) against the committed baselines under
``benchmarks/baselines/`` and fails when a benchmark got slower than the
tolerance allows::

    python scripts/check_bench_regression.py --results bench-results
    python scripts/check_bench_regression.py --results bench-results --tolerance 2.0
    python scripts/check_bench_regression.py --results bench-results --update

Rules:

- every baseline must have a fresh result (a silently skipped benchmark
  would otherwise disarm the gate);
- a fresh result is a regression when its ``wall_time_s`` exceeds
  ``baseline * (1 + tolerance)``; runs faster than the measurement floor
  on both sides are ignored as noise;
- wall times are only compared between runs of the same recorded
  ``scale.name`` — a tiny CI smoke run satisfies the freshness check
  against a full-scale baseline (committed to document a paper-scale
  contract) without being nonsensically measured against it;
- fresh results without a baseline are reported (run with ``--update``
  to adopt them — that is also the baseline-refresh workflow after an
  intentional performance change: regenerate, eyeball, commit);
- ``--update`` refuses to replace an existing baseline with a run of a
  different ``scale.name`` — refresh such baselines at their own scale.

Exit codes: 0 ok, 1 regression or missing result, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_BASELINES = REPO_ROOT / "benchmarks" / "baselines"

#: Below this wall time (seconds) on both sides, differences are noise.
MEASUREMENT_FLOOR_S = 0.005


def load_bench(path: Path) -> dict:
    with path.open(encoding="utf-8") as handle:
        record = json.load(handle)
    if "name" not in record or "wall_time_s" not in record:
        raise ValueError(f"{path} is not a BENCH_*.json record")
    return record


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--results",
        required=True,
        help="directory holding the freshly emitted BENCH_*.json files",
    )
    parser.add_argument(
        "--baselines",
        default=str(DEFAULT_BASELINES),
        help=f"committed baseline directory (default: {DEFAULT_BASELINES})",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed slowdown as a fraction of the baseline wall time "
        "(default: 0.30, i.e. fail when >30%% slower)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="adopt the fresh results as the new baselines instead of checking",
    )
    args = parser.parse_args(argv)
    if args.tolerance < 0.0:
        parser.error(f"--tolerance must be non-negative, got {args.tolerance}")

    results_dir = Path(args.results)
    baselines_dir = Path(args.baselines)
    if not results_dir.is_dir():
        print(f"error: results directory {results_dir} does not exist", file=sys.stderr)
        return 2

    fresh = {p.name: p for p in sorted(results_dir.glob("BENCH_*.json"))}
    if args.update:
        baselines_dir.mkdir(parents=True, exist_ok=True)
        for name, path in fresh.items():
            # Never silently replace a baseline with a run of a
            # different scale (e.g. the full-scale negotiation
            # baseline with a tiny smoke result): regenerate at the
            # baseline's own scale instead.
            existing = baselines_dir / name
            if existing.exists():
                old_scale = (load_bench(existing).get("scale") or {}).get("name")
                new_scale = (load_bench(path).get("scale") or {}).get("name")
                if old_scale != new_scale:
                    print(
                        f"baseline kept:    {name} (baseline scale {old_scale!r}, "
                        f"fresh {new_scale!r} — regenerate at the baseline scale "
                        "to update)"
                    )
                    continue
            shutil.copyfile(path, existing)
            print(f"baseline updated: {name}")
        if not fresh:
            print("error: no BENCH_*.json results to adopt", file=sys.stderr)
            return 2
        return 0

    baselines = {p.name: p for p in sorted(baselines_dir.glob("BENCH_*.json"))}
    if not baselines:
        print(f"error: no baselines under {baselines_dir}", file=sys.stderr)
        return 2

    failures = []
    for name, baseline_path in baselines.items():
        baseline = load_bench(baseline_path)
        if name not in fresh:
            failures.append(f"{name}: no fresh result emitted (benchmark skipped?)")
            continue
        result = load_bench(fresh[name])
        base_scale = (baseline.get("scale") or {}).get("name")
        new_scale = (result.get("scale") or {}).get("name")
        if base_scale != new_scale:
            print(
                f"ok   {name}: scale mismatch (baseline {base_scale!r}, "
                f"fresh {new_scale!r}) — wall times not compared"
            )
            continue
        base_time = float(baseline["wall_time_s"])
        new_time = float(result["wall_time_s"])
        if new_time < MEASUREMENT_FLOOR_S:
            print(f"ok   {name}: {new_time * 1e3:.2f}ms (below measurement floor)")
            continue
        # A sub-floor baseline would make any measurable fresh time look
        # like a regression; compare against the floor instead so a
        # fast-machine baseline doesn't fail slower CI runners on noise.
        limit = max(base_time, MEASUREMENT_FLOOR_S) * (1.0 + args.tolerance)
        status = "FAIL" if new_time > limit else "ok  "
        ratio = new_time / base_time if base_time > 0.0 else float("inf")
        print(
            f"{status} {name}: {new_time:.3f}s vs baseline {base_time:.3f}s "
            f"({ratio:.2f}x, limit {limit:.3f}s)"
        )
        if new_time > limit:
            failures.append(
                f"{name}: {new_time:.3f}s is more than "
                f"{args.tolerance:.0%} slower than the {base_time:.3f}s baseline"
            )

    extra = sorted(set(fresh) - set(baselines))
    for name in extra:
        print(f"note {name}: no committed baseline (adopt with --update)")

    if failures:
        print("\nbenchmark regressions detected:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"\nall {len(baselines)} baselined benchmarks within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
