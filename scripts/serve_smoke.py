#!/usr/bin/env python3
"""CI smoke load for multi-worker ``repro serve``.

Boots a real ``--workers 2`` server on an ephemeral port, fires a
concurrent mixed workload at it through the typed
:class:`~repro.serve.client.ServeClient` — negotiation requests from
several client threads (exercising the coalescing window), the other
workflow routes, async job submissions polled to completion, and the
introspection routes — then SIGKILLs one worker mid-run and verifies
the survivors keep answering (byte-identically, off the shared disk
cache) while the supervisor forks a replacement.  Every response
envelope is written to ``--out`` as a ``.json`` file, the server is
SIGTERMed, and the drain is checked: exit code 0 and a request log of
complete JSONL lines.

CI then validates every written response (and the log records) with
``python -m repro.api.validate`` and uploads the request log as an
artifact::

    python scripts/serve_smoke.py --out serve-envelopes \
        --request-log serve-requests.jsonl

Exit codes: 0 on success, 1 on any failed request or an unclean drain.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import signal
import subprocess
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.api import NegotiateRequest  # noqa: E402
from repro.api.validate import validate_envelope  # noqa: E402
from repro.serve.client import ServeClient  # noqa: E402

#: Concurrent negotiation clients (>= the acceptance bar of 8).
CLIENTS = 8
WORKERS = 2

TINY_TOPOLOGY = {"tier1": 2, "tier2": 4, "tier3": 8, "stubs": 20, "seed": 1}
# A seed no load client uses: the warm body is computed by exactly one
# worker, so post-kill replays *must* come off the shared disk store.
WARM_NEGOTIATE = {"num_choices": 10, "trials": 5, "seed": 9999}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", required=True, help="directory for the response envelopes"
    )
    parser.add_argument(
        "--request-log",
        required=True,
        help="request log path handed to the server",
    )
    args = parser.parse_args(argv)
    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)

    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    server = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--port",
            "0",
            "--workers",
            str(WORKERS),
            "--coalesce-window-ms",
            "25",
            "--request-log",
            args.request_log,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        text=True,
    )
    line = server.stdout.readline()
    match = re.search(r"listening on http://[^:]+:(\d+)", line)
    if not match:
        print(f"error: serve did not start: {line!r}", file=sys.stderr)
        server.kill()
        return 1
    port = int(match.group(1))
    print(f"serve_smoke: server up on port {port} ({WORKERS} workers)")

    failures: list[str] = []

    def save(name: str, response) -> None:
        if response.status != 200:
            failures.append(f"{name}: HTTP {response.status}: {response.body!r}")
            return
        (out_dir / f"{name}.json").write_bytes(response.body)

    def save_envelope(name: str, document: dict) -> None:
        (out_dir / f"{name}.json").write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    def negotiate_client(client_id: int) -> None:
        with ServeClient("127.0.0.1", port) as client:
            for wave in range(2):
                seed = 100 + client_id * 2 + wave
                save(
                    f"negotiate_c{client_id}_w{wave}",
                    client.raw_post(
                        "/v1/negotiate",
                        {"num_choices": 10, "trials": 5, "seed": seed},
                    ),
                )

    def mixed_routes() -> None:
        with ServeClient("127.0.0.1", port) as client:
            save("health", client.raw_get("/v1/health"))
            save("topology", client.raw_post("/v1/topology", TINY_TOPOLOGY))
            save(
                "diversity",
                client.raw_post(
                    "/v1/diversity", {**TINY_TOPOLOGY, "sample_size": 5}
                ),
            )
            save(
                "simulate",
                client.raw_post(
                    "/v1/simulate", {"scenario": "failure-churn", "duration": 6}
                ),
            )
            # The deprecated bare path still answers, flagged as such.
            legacy = client.raw_get("/health")
            if legacy.headers.get("deprecation") != "true":
                failures.append("legacy /health lacked the Deprecation header")

    def job_client() -> None:
        with ServeClient("127.0.0.1", port) as client:
            submitted = client.jobs.submit(
                "negotiate", {"num_choices": 12, "trials": 8, "seed": 7}
            )
            save_envelope("job_submitted", submitted.to_json_dict())
            final = client.jobs.wait(submitted.job_id, timeout=120.0)
            save_envelope("job_final", final.to_json_dict())
            expected = NegotiateRequest(num_choices=12, trials=8, seed=7)
            if final.result != client.negotiate(expected).to_json_dict():
                failures.append("async job result differs from the sync route")

    try:
        # Concurrent mixed load: 8 negotiation clients inside the
        # coalescing window, the other routes, and an async job.
        with ThreadPoolExecutor(max_workers=CLIENTS + 2) as pool:
            workers = [
                pool.submit(negotiate_client, client_id)
                for client_id in range(CLIENTS)
            ]
            workers.append(pool.submit(mixed_routes))
            workers.append(pool.submit(job_client))
            for worker in workers:
                worker.result()

        # Warm one body through a known worker, SIGKILL that worker,
        # and demand the survivors replay the exact bytes at once.
        with ServeClient("127.0.0.1", port) as client:
            warm = client.raw_post("/v1/negotiate", WARM_NEGOTIATE)
            save("negotiate_repeat", warm)
            victim = warm.worker_pid
        if victim is None:
            failures.append("no X-Repro-Worker header on the warm response")
        else:
            print(f"serve_smoke: SIGKILLing worker {victim}")
            os.kill(victim, signal.SIGKILL)

            def replay(_: int) -> bytes:
                with ServeClient("127.0.0.1", port) as client:
                    response = client.raw_post("/v1/negotiate", WARM_NEGOTIATE)
                    if response.status != 200:
                        failures.append(
                            f"post-kill replay: HTTP {response.status}"
                        )
                    return response.body

            with ThreadPoolExecutor(max_workers=CLIENTS) as pool:
                bodies = set(pool.map(replay, range(CLIENTS)))
            if bodies != {warm.body}:
                failures.append(
                    "post-kill replays were not byte-identical to the warm body"
                )
            # The supervisor restarts the victim within a few seconds.
            deadline = time.monotonic() + 15.0
            replaced = False
            while time.monotonic() < deadline and not replaced:
                with ServeClient("127.0.0.1", port) as client:
                    stats = client.stats()
                pids = {int(p) for p in stats["workers"]}
                replaced = len(pids - {victim}) >= WORKERS
                if not replaced:
                    time.sleep(0.25)
            if not replaced:
                failures.append("no replacement worker appeared within 15s")

        # After the load settles: merged /stats reports the totals.
        with ServeClient("127.0.0.1", port) as client:
            save("stats", client.raw_get("/v1/stats"))
    finally:
        server.send_signal(signal.SIGTERM)
        exit_code = server.wait(timeout=60)

    print(f"serve_smoke: drained with exit code {exit_code}")
    if exit_code != 0:
        failures.append(f"server exited {exit_code} on SIGTERM (expected 0)")

    log_path = Path(args.request_log)
    raw = log_path.read_bytes() if log_path.exists() else b""
    if not raw.endswith(b"\n"):
        failures.append("request log is empty or ends mid-line")
    records = []
    for number, line_text in enumerate(raw.decode("utf-8").splitlines(), 1):
        try:
            record = json.loads(line_text)
        except json.JSONDecodeError as error:
            failures.append(f"request log line {number} is not JSON: {error}")
            continue
        for problem in validate_envelope(record):
            failures.append(f"request log line {number}: {problem}")
        records.append(record)
    log_pids = {record.get("pid") for record in records}
    print(
        f"serve_smoke: {len(list(out_dir.glob('*.json')))} envelopes written, "
        f"{len(records)} log records from {len(log_pids)} workers"
    )
    if len(log_pids) < 2:
        failures.append(f"request log names fewer than 2 workers: {log_pids}")

    stats = json.loads((out_dir / "stats.json").read_bytes())
    coalescing = stats.get("coalescing", {})
    if coalescing.get("max_batch_size", 0) <= 1:
        failures.append(f"no cross-client coalescing happened: {coalescing}")
    cache = stats.get("result_cache", {})
    if cache.get("hits", 0) < 1:
        failures.append(f"no cache hit recorded: {cache}")
    if cache.get("disk_hits", 0) < 1:
        failures.append(f"no cross-worker disk hit recorded: {cache}")

    if failures:
        print("serve_smoke failures:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("serve_smoke: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
