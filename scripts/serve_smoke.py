#!/usr/bin/env python3
"""CI smoke load for ``repro serve``.

Boots a real server on an ephemeral port, fires a concurrent mixed
workload at it (negotiation envelopes from several client threads —
exercising the coalescing window — plus topology/simulate/diversity
requests and the introspection routes), writes every response envelope
to ``--out`` as a ``.json`` file, SIGTERMs the server, and checks the
drain: exit code 0 and a request log of complete JSONL lines.

CI then validates every written response (and the log records) with
``python -m repro.api.validate`` and uploads the request log as an
artifact::

    python scripts/serve_smoke.py --out serve-envelopes \
        --request-log serve-requests.jsonl

Exit codes: 0 on success, 1 on any failed request or an unclean drain.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import signal
import subprocess
import sys
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.serve.client import ServeClient  # noqa: E402

#: Concurrent negotiation clients (>= the acceptance bar of 8).
CLIENTS = 8

TINY_TOPOLOGY = {"tier1": 2, "tier2": 4, "tier3": 8, "stubs": 20, "seed": 1}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", required=True, help="directory for the response envelopes"
    )
    parser.add_argument(
        "--request-log",
        required=True,
        help="request log path handed to the server",
    )
    args = parser.parse_args(argv)
    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)

    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    server = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--port",
            "0",
            "--coalesce-window-ms",
            "25",
            "--request-log",
            args.request_log,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        text=True,
    )
    line = server.stdout.readline()
    match = re.search(r"listening on http://[^:]+:(\d+)", line)
    if not match:
        print(f"error: serve did not start: {line!r}", file=sys.stderr)
        server.kill()
        return 1
    port = int(match.group(1))
    print(f"serve_smoke: server up on port {port}")

    failures: list[str] = []

    def save(name: str, response) -> None:
        if response.status != 200:
            failures.append(f"{name}: HTTP {response.status}: {response.body!r}")
            return
        (out_dir / f"{name}.json").write_bytes(response.body)

    def negotiate_client(client_id: int) -> None:
        with ServeClient("127.0.0.1", port) as client:
            for wave in range(2):
                seed = 100 + client_id * 2 + wave
                save(
                    f"negotiate_c{client_id}_w{wave}",
                    client.post(
                        "/negotiate",
                        {"num_choices": 10, "trials": 5, "seed": seed},
                    ),
                )

    try:
        # Concurrent mixed load: 8 negotiation clients inside the
        # coalescing window, plus the other routes interleaved.
        with ThreadPoolExecutor(max_workers=CLIENTS + 1) as pool:
            workers = [
                pool.submit(negotiate_client, client_id)
                for client_id in range(CLIENTS)
            ]

            def mixed_routes() -> None:
                with ServeClient("127.0.0.1", port) as client:
                    save("health", client.get("/health"))
                    save("topology", client.post("/topology", TINY_TOPOLOGY))
                    save(
                        "diversity",
                        client.post(
                            "/v1/diversity",
                            {**TINY_TOPOLOGY, "sample_size": 5},
                        ),
                    )
                    save(
                        "simulate",
                        client.post(
                            "/simulate",
                            {"scenario": "failure-churn", "duration": 6},
                        ),
                    )

            workers.append(pool.submit(mixed_routes))
            for worker in workers:
                worker.result()

        # After the concurrent load settles: a repeat negotiation must
        # be served from the cache, and /stats reports the totals.
        with ServeClient("127.0.0.1", port) as client:
            save(
                "negotiate_repeat",
                client.post(
                    "/negotiate", {"num_choices": 10, "trials": 5, "seed": 100}
                ),
            )
            save("stats", client.get("/stats"))
    finally:
        server.send_signal(signal.SIGTERM)
        exit_code = server.wait(timeout=60)

    print(f"serve_smoke: drained with exit code {exit_code}")
    if exit_code != 0:
        failures.append(f"server exited {exit_code} on SIGTERM (expected 0)")

    log_path = Path(args.request_log)
    raw = log_path.read_bytes() if log_path.exists() else b""
    if not raw.endswith(b"\n"):
        failures.append("request log is empty or ends mid-line")
    records = []
    for number, line_text in enumerate(raw.decode("utf-8").splitlines(), 1):
        try:
            records.append(json.loads(line_text))
        except json.JSONDecodeError as error:
            failures.append(f"request log line {number} is not JSON: {error}")
    print(
        f"serve_smoke: {len(list(out_dir.glob('*.json')))} envelopes written, "
        f"{len(records)} log records"
    )

    stats = json.loads((out_dir / "stats.json").read_bytes())
    coalescing = stats.get("coalescing", {})
    if coalescing.get("max_batch_size", 0) <= 1:
        failures.append(f"no cross-client coalescing happened: {coalescing}")
    cache = stats.get("result_cache", {})
    if cache.get("hits", 0) < 1:
        failures.append(f"no cache hit recorded: {cache}")

    if failures:
        print("serve_smoke failures:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("serve_smoke: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
